"""Semi-naive bottom-up evaluation of Datalog programs.

The engine works on a *database*: a mapping from predicate names to sets of
ground tuples.  Extensional facts are supplied by the caller; evaluation
returns the least fixpoint extending them with every derivable intensional
fact.

Evaluation is *indexed semi-naive*:

* facts are stored in an :class:`IndexedDatabase` carrying a hash index from
  ``(place, constant)`` to tuples, so a body literal with bound terms only
  enumerates compatible rows instead of scanning the predicate;
* each iteration only joins rule bodies against at least one *delta* (newly
  derived) literal, and the body is reordered so the delta literal is matched
  first and the remaining literals are joined greedily by the number of
  variables they share with what is already bound.

:func:`evaluate_program_naive` preserves the straightforward scan-based
evaluator; the property tests assert both produce identical fixpoints, and it
serves as the baseline in benchmark comparisons.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.data.indexing import candidates_from_index, index_add, iter_bound_matches
from repro.datalog.program import Literal, Program, Rule
from repro.queries.terms import Variable, is_variable, split_bound_free

__all__ = [
    "Database",
    "IndexedDatabase",
    "SemiNaiveEvaluation",
    "evaluate_program",
    "evaluate_program_naive",
    "query_database",
]

Database = Dict[str, Set[Tuple[object, ...]]]

_UNBOUND = object()

_EMPTY: Tuple[Tuple[object, ...], ...] = ()


class IndexedDatabase:
    """A fact store for Datalog evaluation with (place, constant) indexes."""

    __slots__ = ("_rows", "_indexes")

    def __init__(self, edb: Optional[Mapping[str, Iterable[Tuple[object, ...]]]] = None) -> None:
        self._rows: Database = {}
        self._indexes: Dict[str, Dict[Tuple[int, object], Set[Tuple[object, ...]]]] = {}
        if edb:
            for predicate, rows in edb.items():
                self._rows.setdefault(predicate, set())
                for row in rows:
                    self.add(predicate, tuple(row))

    def add(self, predicate: str, row: Tuple[object, ...]) -> bool:
        """Add a fact, returning ``True`` if it was new."""
        rows = self._rows.setdefault(predicate, set())
        if row in rows:
            return False
        rows.add(row)
        index_add(self._indexes.setdefault(predicate, {}), row)
        return True

    def size(self, predicate: str) -> int:
        """Number of rows stored for a predicate."""
        return len(self._rows.get(predicate, ()))

    def candidates(
        self, predicate: str, bound: Mapping[int, object]
    ) -> Iterable[Tuple[object, ...]]:
        """Rows agreeing with ``bound`` (``place -> value``), via the index.

        May return internal sets; the evaluation loop materialises every
        rule's derivations before adding them, so no mutation happens while
        a returned collection is being iterated.
        """
        rows = self._rows.get(predicate)
        if rows is None:
            return _EMPTY
        return candidates_from_index(rows, self._indexes.get(predicate, {}), bound)

    def as_database(self) -> Database:
        """The underlying predicate-to-rows mapping."""
        return self._rows


def _match_indexed(
    literal: Literal,
    database: IndexedDatabase,
    assignment: Dict[Variable, object],
    restriction: Optional[Set[Tuple[object, ...]]] = None,
) -> Iterator[Dict[Variable, object]]:
    """Extend ``assignment`` so that ``literal`` matches a database fact.

    ``restriction`` (when given) limits matching to a subset of the
    predicate's tuples — this is how the delta relation of the semi-naive
    algorithm is plugged in; delta sets are small, so they are scanned.
    """
    bound, free = split_bound_free(literal.terms, assignment)

    if restriction is not None:
        rows: Iterable[Tuple[object, ...]] = [
            row
            for row in restriction
            if len(row) == literal.arity
            and all(row[place] == value for place, value in bound.items())
        ]
    else:
        rows = database.candidates(literal.predicate, bound)

    yield from iter_bound_matches(rows, free, assignment, arity=literal.arity)


def _ordered_body(
    rule: Rule, delta_position: Optional[int], database: IndexedDatabase
) -> List[int]:
    """Join order for a rule body: the delta literal first, then greedily by
    bound variables and predicate size."""
    body = rule.body
    remaining = list(range(len(body)))
    order: List[int] = []
    bound_variables: Set[Variable] = set()
    if delta_position is not None:
        order.append(delta_position)
        remaining.remove(delta_position)
        bound_variables.update(body[delta_position].variables)
    while remaining:
        def score(index: int) -> Tuple[int, int]:
            literal = body[index]
            unbound = sum(
                1 for variable in literal.variables if variable not in bound_variables
            )
            return (unbound, database.size(literal.predicate))

        best = min(remaining, key=score)
        remaining.remove(best)
        order.append(best)
        bound_variables.update(body[best].variables)
    return order


def _rule_derivations(
    rule: Rule,
    database: IndexedDatabase,
    delta: Optional[Mapping[str, Set[Tuple[object, ...]]]] = None,
) -> Iterator[Tuple[object, ...]]:
    """Yield head tuples derivable by ``rule``.

    When ``delta`` is given, only derivations using at least one delta fact
    are produced (semi-naive restriction); this is implemented by requiring,
    for some body position, that the literal matches within the delta while
    the other literals match the full database.
    """
    if rule.is_fact:
        yield rule.head.ground_values({})
        return

    positions: Sequence[Optional[int]] = (
        range(len(rule.body)) if delta is not None else [None]
    )
    for delta_position in positions:
        delta_rows: Optional[Set[Tuple[object, ...]]] = None
        if delta_position is not None:
            delta_rows = delta.get(rule.body[delta_position].predicate) if delta else None
            if not delta_rows:
                continue
        order = _ordered_body(rule, delta_position, database)

        def backtrack(depth: int, assignment: Dict[Variable, object]) -> Iterator[Dict[Variable, object]]:
            if depth == len(order):
                yield assignment
                return
            position = order[depth]
            literal = rule.body[position]
            restriction = delta_rows if position == delta_position else None
            for extension in _match_indexed(literal, database, assignment, restriction):
                yield from backtrack(depth + 1, extension)

        for assignment in backtrack(0, {}):
            yield rule.head.ground_values(assignment)


class SemiNaiveEvaluation:
    """A resumable semi-naive evaluation handle.

    Evaluates ``program`` over ``edb`` once on construction, then retains the
    evaluated :class:`IndexedDatabase` together with the delta frontier so
    that :meth:`advance` can absorb later extensional facts and continue the
    semi-naive iteration from where it stopped, instead of re-evaluating from
    an empty database.  This is what makes per-round certainty maintenance
    proportional to the merged delta rather than to the whole configuration.

    ``goal``, when given, names a ground goal predicate that occurs in **no**
    rule body.  Evaluation then short-circuits: a goal-headed rule stops at
    its first derivation (every derivation produces the same ground head),
    and once a goal fact is derived no further rules are applied — later
    :meth:`advance` calls only maintain extensional membership.  With a goal
    the database is *not* guaranteed to be the complete fixpoint; it is only
    guaranteed to contain the goal iff the fixpoint does, which is exactly
    what a monotone certainty check needs.
    """

    __slots__ = ("_program", "_database", "_goal", "_goal_derived", "iterations")

    def __init__(
        self,
        program: Program,
        edb: Optional[Mapping[str, Iterable[Tuple[object, ...]]]] = None,
        *,
        goal: Optional[str] = None,
    ) -> None:
        self._program = program
        self._goal = goal
        self._goal_derived = False
        self._database = IndexedDatabase(edb)
        self.iterations = 0

        # Naive first round (facts and rules applied once over the EDB).
        delta: Dict[str, Set[Tuple[object, ...]]] = {}
        for rule in program:
            if self._apply(rule, None, delta):
                return
        self._saturate(delta)

    @property
    def goal_derived(self) -> bool:
        """Whether the goal predicate has been derived (monotone: final)."""
        return self._goal_derived

    def holds(self, predicate: str) -> bool:
        """Whether any fact is stored for ``predicate``."""
        return self._database.size(predicate) > 0

    def fact_count(self) -> int:
        """Total number of stored facts (extensional plus derived)."""
        return sum(len(rows) for rows in self._database.as_database().values())

    def database(self) -> Database:
        """The underlying predicate-to-rows mapping (shared, do not mutate)."""
        return self._database.as_database()

    def advance(self, facts: Iterable[Tuple[str, Tuple[object, ...]]]) -> List[Tuple[str, Tuple[object, ...]]]:
        """Absorb extensional ``(predicate, row)`` facts; return the new ones.

        Already-present facts are deduplicated for free.  Genuinely new facts
        seed the delta frontier and the semi-naive iteration continues until
        saturation (or until the goal fires, when a goal was declared).  Once
        the goal has been derived only membership is maintained — absorbing
        further facts costs one hash insert each.
        """
        fresh: List[Tuple[str, Tuple[object, ...]]] = []
        delta: Dict[str, Set[Tuple[object, ...]]] = {}
        for predicate, row in facts:
            row = tuple(row)
            if self._database.add(predicate, row):
                fresh.append((predicate, row))
                delta.setdefault(predicate, set()).add(row)
        if delta and not self._goal_derived:
            self._saturate(delta)
        return fresh

    def _apply(
        self,
        rule: Rule,
        delta: Optional[Mapping[str, Set[Tuple[object, ...]]]],
        delta_out: Dict[str, Set[Tuple[object, ...]]],
    ) -> bool:
        """Apply one rule, collecting new facts; ``True`` iff the goal fired."""
        head = rule.head.predicate
        derivations = _rule_derivations(rule, self._database, delta)
        if head == self._goal:
            derived = next(derivations, None)
            if derived is None:
                return False
            if self._database.add(head, derived):
                delta_out.setdefault(head, set()).add(derived)
            self._goal_derived = True
            return True
        for derived in list(derivations):
            if self._database.add(head, derived):
                delta_out.setdefault(head, set()).add(derived)
        return False

    def _saturate(self, delta: Dict[str, Set[Tuple[object, ...]]]) -> None:
        """Run semi-naive iterations until the frontier (or the goal) is done."""
        while delta:
            self.iterations += 1
            new_delta: Dict[str, Set[Tuple[object, ...]]] = {}
            for rule in self._program:
                if rule.is_fact:
                    continue
                body_predicates = {literal.predicate for literal in rule.body}
                if not body_predicates & set(delta):
                    continue
                if self._apply(rule, delta, new_delta):
                    return
            delta = new_delta


def evaluate_program(
    program: Program,
    edb: Mapping[str, Iterable[Tuple[object, ...]]],
) -> Database:
    """Compute the least fixpoint of ``program`` over the extensional facts.

    Returns a new database containing the extensional facts plus every
    derived intensional fact.  One-shot wrapper over
    :class:`SemiNaiveEvaluation`; callers that re-decide the same program as
    facts trickle in should hold a handle and :meth:`~SemiNaiveEvaluation.advance` it instead.

    Under an active tracer each evaluation records a ``datalog.evaluate``
    span (rule count, semi-naive iterations) — the import is deferred to
    call time because :mod:`repro.runtime` transitively imports this module.
    """
    from repro.runtime.tracing import current_tracer

    tracer = current_tracer()
    with tracer.span("datalog.evaluate") as span:
        evaluation = SemiNaiveEvaluation(program, edb)
        if tracer.enabled:
            span.annotate(rules=len(program), iterations=evaluation.iterations)
        return evaluation.database()


# --------------------------------------------------------------------------- #
# Naive reference evaluator (kept for equivalence tests and benchmarks)
# --------------------------------------------------------------------------- #
def _match_scan(
    literal: Literal,
    database: Mapping[str, Set[Tuple[object, ...]]],
    assignment: Dict[Variable, object],
) -> Iterator[Dict[Variable, object]]:
    """Scan-based literal matching over a plain predicate-to-rows mapping."""
    for row in tuple(database.get(literal.predicate, set())):
        if len(row) != literal.arity:
            continue
        extension = dict(assignment)
        matched = True
        for term, value in zip(literal.terms, row):
            if is_variable(term):
                bound = extension.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    extension[term] = value
                elif bound != value:
                    matched = False
                    break
            elif term != value:
                matched = False
                break
        if matched:
            yield extension


def evaluate_program_naive(
    program: Program,
    edb: Mapping[str, Iterable[Tuple[object, ...]]],
) -> Database:
    """Reference naive evaluation: apply every rule over the full database
    until nothing new is derived.  Quadratic, but obviously correct."""
    database: Database = {
        predicate: {tuple(row) for row in rows} for predicate, rows in edb.items()
    }
    changed = True
    while changed:
        changed = False
        for rule in program:
            if rule.is_fact:
                derivations: Iterable[Tuple[object, ...]] = [rule.head.ground_values({})]
            else:
                def backtrack(index: int, assignment: Dict[Variable, object]) -> Iterator[Dict[Variable, object]]:
                    if index == len(rule.body):
                        yield assignment
                        return
                    for extension in _match_scan(rule.body[index], database, assignment):
                        yield from backtrack(index + 1, extension)

                derivations = [
                    rule.head.ground_values(assignment) for assignment in backtrack(0, {})
                ]
            existing = database.setdefault(rule.head.predicate, set())
            for derived in derivations:
                if derived not in existing:
                    existing.add(derived)
                    changed = True
    return database


def query_database(
    database: Mapping[str, Set[Tuple[object, ...]]],
    goal: Literal,
) -> FrozenSet[Tuple[object, ...]]:
    """Answers to a single-literal goal over an evaluated database.

    Returns the projections of matching facts on the goal's variables, in
    first-occurrence order of the variables.
    """
    answers: Set[Tuple[object, ...]] = set()
    goal_variables = goal.variables
    for assignment in _match_scan(goal, database, {}):
        answers.add(tuple(assignment[variable] for variable in goal_variables))
    return frozenset(answers)
