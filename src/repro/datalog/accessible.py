"""The Chang–Li accessible-part construction.

Section 5 of the paper recalls that, for any conjunctive query and any set of
access patterns, one can write a *monadic Datalog* program whose intensional
predicates describe the accessible constants of each abstract domain, and
from which the "accessible part" of an instance — the facts that can ever be
revealed by well-formed access sequences — is derived.

This module builds that program for a schema and evaluates it against a
hidden instance and an initial configuration.  It is used by:

* the exhaustive dynamic-answering strategy of :mod:`repro.planner.dynamic`
  (the approach of Li [18]), which retrieves the whole accessible part;
* tests, as an independent characterisation of reachability.

Construction
------------
For every abstract domain ``D`` there is a monadic predicate ``acc_dom__D``;
for every relation ``R`` there is a predicate ``acc_rel__R`` of the same
arity.  The rules are:

* seed facts ``acc_dom__D(c)`` for every ``(c, D)`` in the active domain of
  the initial configuration;
* seed facts ``acc_rel__R(t)`` for every fact ``R(t)`` of the configuration;
* for every access method on ``R`` with input places ``i1..ik`` (dependent):
  ``acc_rel__R(x1..xn) :- R(x1..xn), acc_dom__D1(x_i1), ..., acc_dom__Dk(x_ik)``;
* for every *independent* access method on ``R``: ``acc_rel__R(x̄) :- R(x̄)``
  (any binding can be guessed, so every matching fact is obtainable);
* for every relation ``R`` and place ``j`` of domain ``D``:
  ``acc_dom__D(x_j) :- acc_rel__R(x̄)`` (every constant of a revealed fact
  becomes available for later bindings).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.data import Configuration, Instance
from repro.datalog.engine import Database, evaluate_program
from repro.datalog.program import Literal, Program, Rule
from repro.queries.terms import Variable
from repro.schema import Schema

__all__ = [
    "domain_predicate",
    "relation_predicate",
    "accessible_program",
    "accessible_part",
    "accessible_values",
]


def domain_predicate(domain_name: str) -> str:
    """Name of the monadic predicate describing accessible constants of a domain."""
    return f"acc_dom__{domain_name}"


def relation_predicate(relation_name: str) -> str:
    """Name of the predicate describing accessible facts of a relation."""
    return f"acc_rel__{relation_name}"


def accessible_program(schema: Schema) -> Program:
    """Build the accessible-part Datalog program for ``schema``."""
    program = Program()
    for relation in schema.relations:
        variables = tuple(Variable(f"x{i}") for i in range(relation.arity))
        relation_literal = Literal(relation.name, variables)
        accessible_literal = Literal(relation_predicate(relation.name), variables)

        for method in schema.methods_for(relation):
            body = [relation_literal]
            if method.dependent:
                for place in method.input_places:
                    domain = relation.domain_of(place)
                    body.append(
                        Literal(domain_predicate(domain.name), (variables[place],))
                    )
            program.add(Rule(accessible_literal, tuple(body)))

        # Every constant of an accessible fact becomes an accessible constant.
        for place in range(relation.arity):
            domain = relation.domain_of(place)
            program.add(
                Rule(
                    Literal(domain_predicate(domain.name), (variables[place],)),
                    (accessible_literal,),
                )
            )
    return program


def _seed_database(instance: Instance, configuration: Configuration) -> Database:
    # The cached frozen views of the indexed instance are handed to the engine
    # as-is; IndexedDatabase copies them into its own indexed storage.
    database: Database = {}
    for relation in instance.schema.relations:
        database[relation.name] = instance.tuples(relation)
    for value, domain in configuration.active_domain():
        database.setdefault(domain_predicate(domain.name), set()).add((value,))
    for fact in configuration.facts():
        database.setdefault(relation_predicate(fact.relation), set()).add(fact.values)
    return database


def accessible_part(instance: Instance, configuration: Configuration) -> Instance:
    """The sub-instance of ``instance`` reachable by well-formed access paths.

    The result contains every fact that some (finite) sequence of well-formed
    accesses starting from ``configuration`` can reveal, assuming sources
    answer exactly.  Facts of the initial configuration are always included.
    """
    schema = instance.schema
    program = accessible_program(schema)
    database = evaluate_program(program, _seed_database(instance, configuration))
    result = Instance(schema)
    for fact in configuration.facts():
        result.add_fact(fact)
    for relation in schema.relations:
        for values in database.get(relation_predicate(relation.name), set()):
            result.add(relation.name, values)
    return result


def accessible_values(
    instance: Instance, configuration: Configuration
) -> Dict[str, Set[object]]:
    """Accessible constants per abstract-domain name."""
    schema = instance.schema
    program = accessible_program(schema)
    database = evaluate_program(program, _seed_database(instance, configuration))
    result: Dict[str, Set[object]] = {}
    for domain in schema.domains():
        rows = database.get(domain_predicate(domain.name), set())
        result[domain.name] = {row[0] for row in rows}
    return result
