"""Datalog substrate: semi-naive engine and the accessible-part construction."""

from repro.datalog.accessible import (
    accessible_part,
    accessible_program,
    accessible_values,
    domain_predicate,
    relation_predicate,
)
from repro.datalog.engine import Database, evaluate_program, query_database
from repro.datalog.program import Literal, Program, Rule

__all__ = [
    "Literal",
    "Rule",
    "Program",
    "Database",
    "evaluate_program",
    "query_database",
    "accessible_program",
    "accessible_part",
    "accessible_values",
    "domain_predicate",
    "relation_predicate",
]
