"""A minimal Datalog representation: literals, rules, programs.

The Datalog substrate is used in two places:

* the Chang–Li *accessible part* construction (see
  :mod:`repro.datalog.accessible`): a monadic Datalog program computing which
  constants and facts can ever be obtained through the access methods;
* the Duschka–Levy *inverse rules* query plans of :mod:`repro.planner`.

Predicates here are plain strings and are not tied to a schema relation, so
intensional predicates (``acc_D``, ``acc_R``) can coexist with extensional
ones (the relations of the schema).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.queries.terms import Term, Variable, is_variable

__all__ = ["Literal", "Rule", "Program"]


@dataclass(frozen=True)
class Literal:
    """A positive literal ``predicate(t1, ..., tk)``."""

    predicate: str
    terms: Tuple[Term, ...]

    @property
    def arity(self) -> int:
        """Number of terms of the literal."""
        return len(self.terms)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Variables of the literal, deduplicated, in order."""
        seen: List[Variable] = []
        for term in self.terms:
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def substitute(self, assignment: Mapping[Variable, object]) -> "Literal":
        """Apply a (possibly partial) assignment."""
        return Literal(
            self.predicate,
            tuple(
                assignment.get(term, term) if is_variable(term) else term
                for term in self.terms
            ),
        )

    def ground_values(self, assignment: Mapping[Variable, object]) -> Tuple[object, ...]:
        """The ground tuple under a total assignment."""
        values = []
        for term in self.terms:
            if is_variable(term):
                if term not in assignment:
                    raise QueryError(f"assignment does not bind {term!r}")
                values.append(assignment[term])
            else:
                values.append(term)
        return tuple(values)

    def is_ground(self) -> bool:
        """Whether the literal has no variables."""
        return not any(is_variable(term) for term in self.terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(
            term.name if is_variable(term) else repr(term) for term in self.terms
        )
        return f"{self.predicate}({rendered})"


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``.  Facts are rules with an empty body."""

    head: Literal
    body: Tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        head_vars = set(self.head.variables)
        body_vars = {
            variable for literal in self.body for variable in literal.variables
        }
        unsafe = head_vars - body_vars
        if unsafe and self.body:
            raise QueryError(
                f"unsafe rule: head variables {sorted(v.name for v in unsafe)} "
                f"do not occur in the body"
            )
        if unsafe and not self.body:
            raise QueryError("a fact (empty-body rule) must have a ground head")

    @property
    def is_fact(self) -> bool:
        """Whether the rule has an empty body (i.e. it is a ground fact)."""
        return not self.body

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_fact:
            return f"{self.head!r}."
        body = ", ".join(repr(literal) for literal in self.body)
        return f"{self.head!r} :- {body}."


class Program:
    """A Datalog program: a list of rules plus derived metadata."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: List[Rule] = list(rules)

    def add(self, rule: Rule) -> None:
        """Append a rule to the program."""
        self._rules.append(rule)

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """All rules of the program."""
        return tuple(self._rules)

    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates that occur in some rule head (intensional predicates)."""
        return frozenset(rule.head.predicate for rule in self._rules)

    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates that occur only in rule bodies (extensional predicates)."""
        heads = self.idb_predicates()
        body_predicates = {
            literal.predicate for rule in self._rules for literal in rule.body
        }
        return frozenset(body_predicates - heads)

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """Rules whose head predicate is ``predicate``."""
        return tuple(rule for rule in self._rules if rule.head.predicate == predicate)

    def is_monadic(self) -> bool:
        """Whether every intensional predicate has arity at most 1."""
        for rule in self._rules:
            if rule.head.arity > 1:
                return False
        return True

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({len(self._rules)} rules)"
