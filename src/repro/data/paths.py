"""Well-formed accesses, responses, access paths, and truncation (Section 2).

This module implements the operational semantics of accesses:

* a *well-formed access* at a configuration is an access whose binding values
  are allowed (always, for independent methods; present in the active domain
  with matching abstract domains, for dependent methods);
* performing an access yields a *response*: a set of tuples of the accessed
  relation compatible with the binding (accesses are *sound* but not
  necessarily exact — any sound subset may be returned);
* a *path* is a sequence of accesses with their responses, starting at a
  configuration; it determines a final configuration;
* the *truncation* of a path removes its initial access and keeps the longest
  prefix of the remaining accesses that stays well-formed without it.  The
  truncation is the key ingredient in the definition of long-term relevance.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import AccessError
from repro.data.configuration import Configuration
from repro.data.instance import Fact, Instance
from repro.schema import Access, AccessMethod, Schema

__all__ = [
    "AccessResponse",
    "AccessPath",
    "is_well_formed",
    "apply_access",
    "response_from_instance",
    "enumerate_well_formed_accesses",
]


def is_well_formed(access: Access, configuration: Configuration) -> bool:
    """Whether ``access`` is well-formed at ``configuration``.

    Independent accesses are always well-formed.  Dependent accesses require
    every binding value, paired with the abstract domain of its input place,
    to be in the active domain of the configuration.
    """
    if not access.method.dependent:
        return True
    adom = configuration.active_domain()
    return all(pair in adom for pair in access.binding_with_domains())


@dataclass(frozen=True)
class AccessResponse:
    """The observed result of one access: the tuples returned by the source.

    Responses are validated to be *sound with respect to the binding*: every
    returned tuple belongs to the accessed relation and agrees with the
    binding on the input places.  Soundness with respect to a hidden instance
    is the responsibility of the caller (see :func:`response_from_instance`).
    """

    access: Access
    facts: Tuple[Tuple[object, ...], ...]

    def __post_init__(self) -> None:
        relation = self.access.relation
        for values in self.facts:
            relation.check_values(values)
            if not self.access.matches(values):
                raise AccessError(
                    f"response tuple {values!r} does not match the binding of "
                    f"{self.access!r}"
                )

    @staticmethod
    def trusted(access: Access, facts: Tuple[Tuple[object, ...], ...]) -> "AccessResponse":
        """Build a response *without* re-validating the tuples.

        For callers that obtained ``facts`` by an index lookup keyed on the
        binding (e.g. :class:`~repro.sources.service.DataSource`), validation
        is redundant; this constructor skips it.  The caller guarantees every
        tuple belongs to the accessed relation and agrees with the binding.
        """
        response = object.__new__(AccessResponse)
        object.__setattr__(response, "access", access)
        object.__setattr__(response, "facts", facts)
        return response

    def as_facts(self) -> Tuple[Fact, ...]:
        """The response tuples as :class:`~repro.data.instance.Fact` objects."""
        relation_name = self.access.relation.name
        return tuple(Fact(relation_name, values) for values in self.facts)

    def is_empty(self) -> bool:
        """Whether the access returned no tuple."""
        return not self.facts

    def __len__(self) -> int:
        return len(self.facts)


def response_from_instance(
    access: Access,
    instance: Instance,
    subset: Optional[Iterable[Tuple[object, ...]]] = None,
) -> AccessResponse:
    """Build a sound response to ``access`` drawn from ``instance``.

    By default the *exact* response (all matching tuples of the instance) is
    returned; passing ``subset`` restricts the response to the given tuples,
    which must all be matching tuples of the instance — this models sound but
    inexact sources.
    """
    matching = set(access.select(instance.tuples(access.relation)))
    if subset is None:
        chosen = tuple(sorted(matching, key=repr))
    else:
        chosen = tuple(subset)
        for values in chosen:
            if tuple(values) not in matching:
                raise AccessError(
                    f"tuple {values!r} is not a sound response to {access!r} "
                    f"for the given instance"
                )
    return AccessResponse(access, tuple(tuple(values) for values in chosen))


def apply_access(
    configuration: Configuration,
    response: AccessResponse,
    *,
    check_well_formed: bool = True,
) -> Configuration:
    """The successor configuration ``Conf + (AcM, Bind, Resp)``.

    The accessed relation gains the response tuples; every other relation is
    unchanged.  If ``check_well_formed`` is true (the default) the access must
    be well-formed at ``configuration``.
    """
    if check_well_formed and not is_well_formed(response.access, configuration):
        raise AccessError(
            f"access {response.access!r} is not well-formed at the configuration"
        )
    return configuration.extended_with(response.as_facts())


@dataclass
class AccessPath:
    """A path: an initial configuration and a sequence of access responses.

    The path of the paper is the alternating sequence
    ``Conf_1, (AcM_1, Bind_1), Conf_2, ...``; here each step stores the access
    together with the tuples it returned, and successor configurations are
    recomputed on demand.
    """

    initial: Configuration
    steps: List[AccessResponse] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def extended(self, response: AccessResponse) -> "AccessPath":
        """A new path with one more step appended."""
        return AccessPath(self.initial, list(self.steps) + [response])

    def append(self, response: AccessResponse) -> None:
        """Append a step in place."""
        self.steps.append(response)

    def __len__(self) -> int:
        return len(self.steps)

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #
    def configurations(self) -> Iterator[Configuration]:
        """Yield the successive configurations, starting with the initial one."""
        current = self.initial
        yield current
        for response in self.steps:
            current = apply_access(current, response, check_well_formed=False)
            yield current

    def final_configuration(self) -> Configuration:
        """The configuration reached after every step of the path."""
        current = self.initial
        for response in self.steps:
            current = apply_access(current, response, check_well_formed=False)
        return current

    def is_well_formed(self) -> bool:
        """Whether every access of the path is well-formed when it is made."""
        current = self.initial
        for response in self.steps:
            if not is_well_formed(response.access, current):
                return False
            current = apply_access(current, response, check_well_formed=False)
        return True

    def is_sound_for(self, instance: Instance) -> bool:
        """Whether every response only returns tuples present in ``instance``."""
        for response in self.steps:
            for values in response.facts:
                if not instance.contains(response.access.relation, values):
                    return False
        return True

    def added_facts(self) -> Tuple[Fact, ...]:
        """All facts returned along the path (with duplicates removed)."""
        seen = []
        seen_set = set()
        for response in self.steps:
            for fact in response.as_facts():
                key = (fact.relation, fact.values)
                if key not in seen_set:
                    seen_set.add(key)
                    seen.append(fact)
        return tuple(seen)

    # ------------------------------------------------------------------ #
    # Truncation (Section 2, "Long-term impact")
    # ------------------------------------------------------------------ #
    def truncation(self) -> "AccessPath":
        """The truncated path: drop the first access, keep the longest
        well-formed prefix of the remaining accesses.

        Following the paper, the truncated path of
        ``Conf_1, (AcM_1, Bind_1), ..., Conf_n`` starts again at ``Conf_1``,
        skips the initial access, and keeps accesses ``(AcM_j, Bind_j)`` for
        ``j >= 2`` as long as each is well-formed at the configuration built
        without the initial access's response.
        """
        truncated = AccessPath(self.initial, [])
        current = self.initial
        for response in self.steps[1:]:
            if not is_well_formed(response.access, current):
                break
            truncated.steps.append(response)
            current = apply_access(current, response, check_well_formed=False)
        return truncated

    @contextmanager
    def truncation_view(self) -> Iterator[Configuration]:
        """The truncated path's final configuration, as a zero-copy view.

        Replays the truncation semantics *in place* on ``self.initial`` with
        an undo log (the crayfish-chase pattern): facts actually added are
        recorded and removed again, in reverse order, when the ``with`` block
        exits — :meth:`~repro.data.instance.Instance.remove` exactly reverses
        :meth:`~repro.data.instance.Instance.add`, so the configuration's
        content, fingerprint, indexes, and cached views are restored even on
        an exception.  O(|path|) in steps *and* allocations: no configuration
        copy is taken.

        The yielded object IS ``self.initial`` (temporarily grown); callers
        must finish reading it inside the block and must not let it escape.
        Mutating a live configuration view is safe on the strategy's
        dispatching thread — merges and relevance checks are serialized there
        (see the mediator's concurrency notes) — which is where every witness
        search and revalidation runs.

        This is the *only* implementation of the truncation-replay semantics:
        the fresh witness search and the incremental
        :meth:`~repro.runtime.witness.LtrWitness.revalidate` both use it, so
        the two engines cannot drift on how an ill-formed step truncates the
        path (the longest well-formed prefix is kept; everything after the
        first ill-formed step is dropped, even steps that do not depend on
        the probed access).
        """
        current = self.initial
        added: List[Fact] = []
        try:
            for response in self.steps[1:]:
                if not is_well_formed(response.access, current):
                    break
                for fact in response.as_facts():
                    if current.add_fact(fact):
                        added.append(fact)
            yield current
        finally:
            for fact in reversed(added):
                current.remove(fact.relation, fact.values)

    def truncation_final_configuration(self) -> Configuration:
        """The configuration reached at the end of the truncated path.

        Semantically ``self.truncation().final_configuration()``, as a
        standalone copy.  Callers that only *evaluate* at the truncated
        configuration should use :meth:`truncation_view` instead and skip
        the copy.
        """
        with self.truncation_view() as truncated:
            return truncated.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessPath(len={len(self.steps)})"


def enumerate_well_formed_accesses(
    schema: Schema,
    configuration: Configuration,
    *,
    independent_values: Iterable[object] = (),
) -> Iterator[Access]:
    """Enumerate the well-formed accesses available at a configuration.

    For dependent methods, the bindings range over the active-domain values of
    the matching abstract domains.  For independent methods, bindings range
    over the same values plus the caller-provided ``independent_values`` pool
    (an infinite choice in the paper, necessarily finite here).
    """
    adom = configuration.active_domain()
    extra = tuple(independent_values)
    for method in schema.access_methods:
        pools: List[List[object]] = []
        feasible = True
        for place in method.input_places:
            domain = method.relation.domain_of(place)
            values = sorted(
                {value for value, dom in adom if dom == domain}, key=repr
            )
            if not method.dependent:
                values = sorted(set(values) | set(extra), key=repr)
            if not values:
                feasible = False
                break
            pools.append(list(values))
        if not feasible:
            continue
        for binding in _product(pools):
            yield Access(method, tuple(binding))


def _product(pools: Sequence[Sequence[object]]) -> Iterator[Tuple[object, ...]]:
    """Cartesian product that yields a single empty binding for no inputs."""
    if not pools:
        yield ()
        return
    head, *rest = pools
    for value in head:
        for tail in _product(rest):
            yield (value,) + tail
