"""Configurations: the knowledge accumulated by past accesses (Section 2).

A *configuration* ``Conf`` for an instance ``I`` is a sub-instance of ``I``:
for every relation, a subset of its tuples.  A configuration is *consistent*
with any instance that contains it.  For monotone (positive) queries, a
Boolean query is *certain* at ``Conf`` exactly when it already holds in
``Conf`` itself, because ``Conf`` is the minimal consistent instance; the
certain-answer machinery in :mod:`repro.queries.certain` relies on this.

A configuration also knows which constants of the query are available; the
paper assumes "all constants appearing in the query are present in the
configuration", which is modelled by :meth:`Configuration.with_constants`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConsistencyError
from repro.data.indexing import fact_hash
from repro.data.instance import Fact, Instance
from repro.schema import AbstractDomain, Schema

__all__ = ["Configuration"]


class Configuration(Instance):
    """A configuration: an instance plus a set of known constants.

    In addition to ground facts, a configuration carries *seed constants*
    (value, domain) pairs — constants that are known without being part of any
    fact yet, such as the constants occurring in the query.  Seed constants
    participate in the active domain and can therefore be used as inputs to
    dependent accesses, exactly as the paper prescribes.
    """

    def __init__(
        self,
        schema: Schema,
        facts: Union[Mapping[str, Iterable[Sequence[object]]], Iterable[Fact], None] = None,
        constants: Iterable[Tuple[object, AbstractDomain]] = (),
    ) -> None:
        self._constants: set = set()
        self._constants_hash = 0
        self._combined_adom: Optional[FrozenSet[Tuple[object, AbstractDomain]]] = None
        super().__init__(schema, facts)
        for value, domain in constants:
            self.add_constant(value, domain)

    # ------------------------------------------------------------------ #
    # Seed constants
    # ------------------------------------------------------------------ #
    @property
    def seed_constants(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Constants known to the configuration independently of any fact."""
        return frozenset(self._constants)

    def add_constant(self, value: object, domain: AbstractDomain) -> None:
        """Declare ``value`` (of ``domain``) as known to the configuration."""
        pair = (value, domain)
        if pair not in self._constants:
            self._constants.add(pair)
            self._constants_hash ^= fact_hash(domain.name, (value,))
            self._combined_adom = None
            self._pools_cache = None

    def with_constants(
        self, constants: Iterable[Tuple[object, AbstractDomain]]
    ) -> "Configuration":
        """Return a copy of the configuration with extra seed constants."""
        clone = self.copy()
        for value, domain in constants:
            clone.add_constant(value, domain)
        return clone

    # ------------------------------------------------------------------ #
    # Overrides
    # ------------------------------------------------------------------ #
    def active_domain(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Active domain of the facts plus the seed constants."""
        combined = self._combined_adom
        if combined is None:
            combined = super().active_domain() | self._constants
            self._combined_adom = combined
        return combined

    def _invalidate_adom(self) -> None:
        super()._invalidate_adom()
        self._combined_adom = None

    def fingerprint(self) -> Tuple[int, int, int]:
        """Content fingerprint covering facts and seed constants."""
        size, content = super().fingerprint()
        return (size, content, self._constants_hash)

    def wire_constants(self) -> Tuple[Tuple[object, AbstractDomain], ...]:
        """The seed constants in deterministic order (the wire format)."""
        return tuple(sorted(self._constants, key=repr))

    def __reduce__(self):
        # Extends the compact Instance wire format with the seed constants;
        # see :meth:`repro.data.instance.Instance.__reduce__`.
        return (
            self.__class__,
            (self.schema, self.wire_facts(), self.wire_constants()),
        )

    def copy(self) -> "Configuration":
        """A deep copy (sharing the schema)."""
        clone = Configuration(self.schema)
        self._copy_storage_into(clone)
        clone._constants = set(self._constants)
        clone._constants_hash = self._constants_hash
        clone._combined_adom = self._combined_adom
        return clone

    def union(self, other: Instance) -> "Configuration":
        """A new configuration with the facts (and constants) of both operands."""
        merged = self.copy()
        for fact in other.facts():
            merged.add_fact(fact)
        if isinstance(other, Configuration):
            for value, domain in other._constants:
                merged.add_constant(value, domain)
        return merged

    def extended_with(self, facts: Iterable[Fact]) -> "Configuration":
        """A new configuration with extra facts added (non-destructive)."""
        clone = self.copy()
        clone.add_all(facts)
        return clone

    # ------------------------------------------------------------------ #
    # Consistency
    # ------------------------------------------------------------------ #
    def is_consistent_with(self, instance: Instance) -> bool:
        """Whether this configuration is a sub-instance of ``instance``."""
        return self.issubset(instance)

    def check_consistent_with(self, instance: Instance) -> None:
        """Raise :class:`~repro.exceptions.ConsistencyError` if inconsistent."""
        if not self.is_consistent_with(instance):
            missing = [fact for fact in self.facts() if fact not in instance]
            raise ConsistencyError(
                f"configuration is not consistent with the instance; "
                f"{len(missing)} fact(s) of the configuration are absent, "
                f"e.g. {missing[0]!r}"
            )

    @staticmethod
    def empty(schema: Schema) -> "Configuration":
        """The empty configuration over ``schema``."""
        return Configuration(schema)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__repr__()
        return base.replace("Instance", "Configuration", 1)
