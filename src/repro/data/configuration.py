"""Configurations: the knowledge accumulated by past accesses (Section 2).

A *configuration* ``Conf`` for an instance ``I`` is a sub-instance of ``I``:
for every relation, a subset of its tuples.  A configuration is *consistent*
with any instance that contains it.  For monotone (positive) queries, a
Boolean query is *certain* at ``Conf`` exactly when it already holds in
``Conf`` itself, because ``Conf`` is the minimal consistent instance; the
certain-answer machinery in :mod:`repro.queries.certain` relies on this.

A configuration also knows which constants of the query are available; the
paper assumes "all constants appearing in the query are present in the
configuration", which is modelled by :meth:`Configuration.with_constants`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConsistencyError
from repro.data.instance import Fact, Instance
from repro.schema import AbstractDomain, Schema

__all__ = ["Configuration"]


class Configuration(Instance):
    """A configuration: an instance plus a set of known constants.

    In addition to ground facts, a configuration carries *seed constants*
    (value, domain) pairs — constants that are known without being part of any
    fact yet, such as the constants occurring in the query.  Seed constants
    participate in the active domain and can therefore be used as inputs to
    dependent accesses, exactly as the paper prescribes.
    """

    def __init__(
        self,
        schema: Schema,
        facts: Union[Mapping[str, Iterable[Sequence[object]]], Iterable[Fact], None] = None,
        constants: Iterable[Tuple[object, AbstractDomain]] = (),
    ) -> None:
        super().__init__(schema, facts)
        self._constants: set = set(constants)

    # ------------------------------------------------------------------ #
    # Seed constants
    # ------------------------------------------------------------------ #
    @property
    def seed_constants(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Constants known to the configuration independently of any fact."""
        return frozenset(self._constants)

    def add_constant(self, value: object, domain: AbstractDomain) -> None:
        """Declare ``value`` (of ``domain``) as known to the configuration."""
        self._constants.add((value, domain))

    def with_constants(
        self, constants: Iterable[Tuple[object, AbstractDomain]]
    ) -> "Configuration":
        """Return a copy of the configuration with extra seed constants."""
        clone = self.copy()
        for value, domain in constants:
            clone.add_constant(value, domain)
        return clone

    # ------------------------------------------------------------------ #
    # Overrides
    # ------------------------------------------------------------------ #
    def active_domain(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Active domain of the facts plus the seed constants."""
        return super().active_domain() | frozenset(self._constants)

    def copy(self) -> "Configuration":
        """A deep copy (sharing the schema)."""
        clone = Configuration(self.schema)
        for fact in self.facts():
            clone.add_fact(fact)
        clone._constants = set(self._constants)
        return clone

    def union(self, other: Instance) -> "Configuration":
        """A new configuration with the facts (and constants) of both operands."""
        merged = self.copy()
        for fact in other.facts():
            merged.add_fact(fact)
        if isinstance(other, Configuration):
            merged._constants |= other._constants
        return merged

    def extended_with(self, facts: Iterable[Fact]) -> "Configuration":
        """A new configuration with extra facts added (non-destructive)."""
        clone = self.copy()
        clone.add_all(facts)
        return clone

    # ------------------------------------------------------------------ #
    # Consistency
    # ------------------------------------------------------------------ #
    def is_consistent_with(self, instance: Instance) -> bool:
        """Whether this configuration is a sub-instance of ``instance``."""
        return self.issubset(instance)

    def check_consistent_with(self, instance: Instance) -> None:
        """Raise :class:`~repro.exceptions.ConsistencyError` if inconsistent."""
        if not self.is_consistent_with(instance):
            missing = [fact for fact in self.facts() if fact not in instance]
            raise ConsistencyError(
                f"configuration is not consistent with the instance; "
                f"{len(missing)} fact(s) of the configuration are absent, "
                f"e.g. {missing[0]!r}"
            )

    @staticmethod
    def empty(schema: Schema) -> "Configuration":
        """The empty configuration over ``schema``."""
        return Configuration(schema)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__repr__()
        return base.replace("Instance", "Configuration", 1)
