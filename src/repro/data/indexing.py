"""Shared (place, constant) index lookup.

All indexed fact stores in this library (:class:`~repro.data.instance.Instance`,
:class:`~repro.queries.homomorphism.CanonicalInstance`, the Datalog engine's
:class:`~repro.datalog.engine.IndexedDatabase`) keep, per relation, a hash
index ``(place, constant) -> set of rows``.  This module centralises the
lookup strategy: pick the smallest bucket among the bound places, then filter
it on the remaining bound places.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

__all__ = [
    "candidates_from_index",
    "fact_hash",
    "index_add",
    "index_discard",
    "iter_bound_matches",
]

_EMPTY: Tuple[Tuple[object, ...], ...] = ()

_UNBOUND = object()


def candidates_from_index(
    rows: Iterable[Tuple[object, ...]],
    index: Mapping[Tuple[int, object], Set[Tuple[object, ...]]],
    bound: Mapping[int, object],
    *,
    snapshot: bool = False,
) -> Iterable[Tuple[object, ...]]:
    """Rows agreeing with ``bound`` (``place -> value``), served from ``index``.

    ``rows`` is the full row set (returned when nothing is bound).  With
    ``snapshot=True`` the aliasing paths return an immutable copy, so callers
    may keep iterating while the underlying store is mutated; with
    ``snapshot=False`` internal sets may be returned directly and must
    neither be mutated nor iterated across store mutations.

    Rows shorter than a bound place are filtered out (mixed-arity stores);
    schema-validated stores never hit that guard.
    """
    if not bound:
        return tuple(rows) if snapshot else rows
    best: Optional[Set[Tuple[object, ...]]] = None
    for place, value in bound.items():
        bucket = index.get((place, value))
        if bucket is None:
            return _EMPTY
        if best is None or len(bucket) < len(best):
            best = bucket
    assert best is not None
    if len(bound) == 1:
        return tuple(best) if snapshot else best
    return [
        row
        for row in best
        if all(
            place < len(row) and row[place] == value
            for place, value in bound.items()
        )
    ]


def iter_bound_matches(
    rows: Iterable[Tuple[object, ...]],
    free: Iterable[Tuple[int, object]],
    assignment: Mapping[object, object],
    *,
    arity: Optional[int] = None,
):
    """Extend ``assignment`` once per row, binding the ``free`` places.

    ``free`` pairs each unbound place with its binding key (a variable);
    repeated keys must agree across places.  Rows are assumed to already
    satisfy the bound places (they came from :func:`candidates_from_index`);
    with ``arity`` given, rows of a different length are skipped (mixed-arity
    stores).
    """
    free = tuple(free)  # re-iterated once per row; a one-shot iterator would silently drop constraints
    for row in rows:
        if arity is not None and len(row) != arity:
            continue
        extension = dict(assignment)
        matched = True
        for place, key in free:
            value = row[place]
            seen = extension.get(key, _UNBOUND)
            if seen is _UNBOUND:
                extension[key] = value
            elif seen != value:
                matched = False
                break
        if matched:
            yield extension


_HASH_MASK = (1 << 64) - 1


def fact_hash(label: str, row: Tuple[object, ...]) -> int:
    """A 64-bit content hash of one fact, safe to XOR-accumulate.

    CPython reserves ``-1`` as an error sentinel, so ``hash(-1) == hash(-2)``
    — and tuple hashing inherits that collision, making ``('R', (-1,))`` and
    ``('R', (-2,))`` hash equal *deterministically*.  Fingerprints built from
    plain ``hash`` would therefore confuse ordinary integer data.  This
    combiner feeds raw integer values (exact ``int`` only, not ``bool``)
    into a polynomial accumulator instead, leaving only the generic
    hash-collision probability.
    """
    acc = hash(label)
    for value in row:
        part = value if type(value) is int else hash(value)
        acc = (acc * 1000003 + part) & _HASH_MASK
    return acc


def index_add(
    index: Dict[Tuple[int, object], Set[Tuple[object, ...]]],
    row: Tuple[object, ...],
) -> None:
    """Register ``row`` under every ``(place, value)`` key of ``index``."""
    for place, value in enumerate(row):
        bucket = index.get((place, value))
        if bucket is None:
            index[(place, value)] = {row}
        else:
            bucket.add(row)


def index_discard(
    index: Dict[Tuple[int, object], Set[Tuple[object, ...]]],
    row: Tuple[object, ...],
) -> None:
    """Remove ``row`` from every ``(place, value)`` bucket, dropping empties."""
    for place, value in enumerate(row):
        bucket = index.get((place, value))
        if bucket is not None:
            bucket.discard(row)
            if not bucket:
                del index[(place, value)]
