"""Instances, configurations, accesses, and access paths (paper Section 2)."""

from repro.data.configuration import Configuration
from repro.data.instance import Fact, Instance
from repro.data.paths import (
    AccessPath,
    AccessResponse,
    apply_access,
    enumerate_well_formed_accesses,
    is_well_formed,
    response_from_instance,
)

__all__ = [
    "Fact",
    "Instance",
    "Configuration",
    "AccessResponse",
    "AccessPath",
    "is_well_formed",
    "apply_access",
    "response_from_instance",
    "enumerate_well_formed_accesses",
]
