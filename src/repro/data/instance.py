"""Database instances and facts.

An *instance* assigns a finite set of tuples to every relation of a schema.
Instances play two roles in the paper and in this library:

* the *source instance* ``I``: the hidden content of the data sources, only
  observable through accesses;
* *configurations* (see :mod:`repro.data.configuration`): the part of ``I``
  already revealed by past accesses.  A configuration is itself an instance,
  with extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import SchemaError
from repro.schema import AbstractDomain, Relation, Schema

__all__ = ["Fact", "Instance"]


@dataclass(frozen=True)
class Fact:
    """A ground fact: a relation name together with a tuple of values."""

    relation: str
    values: Tuple[object, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(repr(value) for value in self.values)
        return f"{self.relation}({rendered})"


class Instance:
    """A finite relational instance over a schema.

    The instance validates arity (and enumerated-domain membership) of every
    tuple it stores.  Tuples are stored as plain Python tuples; the abstract
    domain of a value is implied by the place it occupies.
    """

    def __init__(
        self,
        schema: Schema,
        facts: Union[Mapping[str, Iterable[Sequence[object]]], Iterable[Fact], None] = None,
    ) -> None:
        self._schema = schema
        self._tuples: Dict[str, Set[Tuple[object, ...]]] = {
            relation.name: set() for relation in schema.relations
        }
        if facts is None:
            return
        if isinstance(facts, Mapping):
            for relation_name, rows in facts.items():
                for row in rows:
                    self.add(relation_name, row)
        else:
            for fact in facts:
                self.add(fact.relation, fact.values)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema this instance is defined over."""
        return self._schema

    def tuples(self, relation: Union[str, Relation]) -> FrozenSet[Tuple[object, ...]]:
        """The set of tuples currently stored for ``relation``."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        return frozenset(self._tuples[name])

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts of the instance."""
        for relation_name in self._tuples:
            for values in sorted(self._tuples[relation_name], key=repr):
                yield Fact(relation_name, values)

    def contains(self, relation: Union[str, Relation], values: Sequence[object]) -> bool:
        """Whether ``relation(values)`` is a fact of the instance."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        return tuple(values) in self._tuples[name]

    def __contains__(self, fact: Fact) -> bool:
        return self.contains(fact.relation, fact.values)

    def size(self) -> int:
        """Total number of facts."""
        return sum(len(rows) for rows in self._tuples.values())

    def __len__(self) -> int:
        return self.size()

    def is_empty(self) -> bool:
        """Whether the instance has no facts at all."""
        return self.size() == 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, relation: Union[str, Relation], values: Sequence[object]) -> bool:
        """Add a fact, returning ``True`` if it was new."""
        name = relation if isinstance(relation, str) else relation.name
        rel = self._schema.relation(name)
        row = tuple(values)
        rel.check_values(row)
        if row in self._tuples[name]:
            return False
        self._tuples[name].add(row)
        return True

    def add_fact(self, fact: Fact) -> bool:
        """Add a :class:`Fact`, returning ``True`` if it was new."""
        return self.add(fact.relation, fact.values)

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for fact in facts if self.add_fact(fact))

    def remove(self, relation: Union[str, Relation], values: Sequence[object]) -> bool:
        """Remove a fact, returning ``True`` if it was present."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        row = tuple(values)
        if row in self._tuples[name]:
            self._tuples[name].remove(row)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Set-like operations
    # ------------------------------------------------------------------ #
    def copy(self) -> "Instance":
        """A deep copy (sharing the schema)."""
        clone = Instance(self._schema)
        for relation_name, rows in self._tuples.items():
            clone._tuples[relation_name] = set(rows)
        return clone

    def union(self, other: "Instance") -> "Instance":
        """A new instance containing the facts of both instances."""
        merged = self.copy()
        for fact in other.facts():
            merged.add_fact(fact)
        return merged

    def issubset(self, other: "Instance") -> bool:
        """Whether every fact of this instance is in ``other``."""
        for relation_name, rows in self._tuples.items():
            if not rows <= other._tuples.get(relation_name, set()):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._tuples == other._tuples

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance objects are mutable and unhashable")

    # ------------------------------------------------------------------ #
    # Active domain
    # ------------------------------------------------------------------ #
    def active_domain(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Constants appearing in the instance, paired with their abstract domains.

        Following the paper, the active domain is a set of pairs
        ``(value, domain)``: the same value occurring at attributes of two
        different domains yields two entries.
        """
        pairs: Set[Tuple[object, AbstractDomain]] = set()
        for relation_name, rows in self._tuples.items():
            relation = self._schema.relation(relation_name)
            for row in rows:
                for place, value in enumerate(row):
                    pairs.add((value, relation.domain_of(place)))
        return frozenset(pairs)

    def active_values(self, domain: Optional[AbstractDomain] = None) -> FrozenSet[object]:
        """Values of the active domain, optionally restricted to one domain."""
        if domain is None:
            return frozenset(value for value, _ in self.active_domain())
        return frozenset(
            value for value, dom in self.active_domain() if dom == domain
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for relation_name, rows in self._tuples.items():
            if rows:
                parts.append(f"{relation_name}:{len(rows)}")
        return f"Instance({', '.join(parts) or 'empty'})"
