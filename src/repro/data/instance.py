"""Database instances and facts.

An *instance* assigns a finite set of tuples to every relation of a schema.
Instances play two roles in the paper and in this library:

* the *source instance* ``I``: the hidden content of the data sources, only
  observable through accesses;
* *configurations* (see :mod:`repro.data.configuration`): the part of ``I``
  already revealed by past accesses.  A configuration is itself an instance,
  with extra bookkeeping.

Instances are *indexed*: every relation maintains a hash index from
``(place, constant)`` to the set of tuples carrying that constant at that
place.  The homomorphism search (:mod:`repro.queries.homomorphism`) and the
Datalog engine (:mod:`repro.datalog.engine`) use these indexes to look up only
the tuples compatible with the values already bound, instead of scanning whole
relations.  The active domain and the per-relation tuple sets are cached and
invalidated incrementally, and every instance maintains an order-independent
content *fingerprint* used by the memoization layer in :mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.data.indexing import (
    candidates_from_index,
    fact_hash,
    index_add,
    index_discard,
)
from repro.exceptions import SchemaError
from repro.schema import AbstractDomain, Relation, Schema

__all__ = ["Fact", "Instance"]


@dataclass(frozen=True)
class Fact:
    """A ground fact: a relation name together with a tuple of values."""

    relation: str
    values: Tuple[object, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(repr(value) for value in self.values)
        return f"{self.relation}({rendered})"


#: Index of one relation: ``(place, constant) -> set of tuples``.
_RelationIndex = Dict[Tuple[int, object], Set[Tuple[object, ...]]]


class Instance:
    """A finite relational instance over a schema.

    The instance validates arity (and enumerated-domain membership) of every
    tuple it stores.  Tuples are stored as plain Python tuples; the abstract
    domain of a value is implied by the place it occupies.
    """

    def __init__(
        self,
        schema: Schema,
        facts: Union[Mapping[str, Iterable[Sequence[object]]], Iterable[Fact], None] = None,
    ) -> None:
        self._schema = schema
        self._tuples: Dict[str, Set[Tuple[object, ...]]] = {
            relation.name: set() for relation in schema.relations
        }
        self._indexes: Dict[str, _RelationIndex] = {
            relation.name: {} for relation in schema.relations
        }
        # Reference counts of (value, domain) pairs over all stored tuples,
        # kept incrementally so ``active_domain`` is O(1) amortised.
        self._adom_counts: Dict[Tuple[object, AbstractDomain], int] = {}
        self._adom_cache: Optional[FrozenSet[Tuple[object, AbstractDomain]]] = None
        self._pools_cache: Optional[Dict[AbstractDomain, Tuple[object, ...]]] = None
        # Per-relation frozen views of the tuple sets, invalidated on mutation.
        self._frozen: Dict[str, Optional[FrozenSet[Tuple[object, ...]]]] = {}
        # Order-independent content hash (xor of per-fact hashes).
        self._content_hash = 0
        self._size = 0
        if facts is None:
            return
        if isinstance(facts, Mapping):
            for relation_name, rows in facts.items():
                for row in rows:
                    self.add(relation_name, row)
        else:
            for fact in facts:
                self.add(fact.relation, fact.values)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema this instance is defined over."""
        return self._schema

    def tuples(self, relation: Union[str, Relation]) -> FrozenSet[Tuple[object, ...]]:
        """The set of tuples currently stored for ``relation``."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        frozen = self._frozen.get(name)
        if frozen is None:
            frozen = frozenset(self._tuples[name])
            self._frozen[name] = frozen
        return frozen

    def tuples_matching(
        self, relation: Union[str, Relation], bound: Mapping[int, object]
    ) -> Iterable[Tuple[object, ...]]:
        """Tuples of ``relation`` agreeing with ``bound`` (``place -> value``).

        Served from the per-(place, constant) index: the smallest matching
        bucket is scanned and filtered on the remaining bound places.  The
        result is a snapshot: instances (notably configurations held as live
        views) may be mutated while a caller is still iterating lazily over
        matches, so internal sets are never returned directly.
        """
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        return candidates_from_index(
            self._tuples[name], self._indexes[name], bound, snapshot=True
        )

    def relation_size(self, relation: Union[str, Relation]) -> int:
        """Number of tuples stored for ``relation``."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        return len(self._tuples[name])

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts of the instance."""
        for relation_name in self._tuples:
            for values in sorted(self._tuples[relation_name], key=repr):
                yield Fact(relation_name, values)

    def contains(self, relation: Union[str, Relation], values: Sequence[object]) -> bool:
        """Whether ``relation(values)`` is a fact of the instance."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        return tuple(values) in self._tuples[name]

    def __contains__(self, fact: Fact) -> bool:
        return self.contains(fact.relation, fact.values)

    def size(self) -> int:
        """Total number of facts."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        """Whether the instance has no facts at all."""
        return self._size == 0

    def fingerprint(self) -> Tuple[int, int]:
        """An order-independent content fingerprint.

        Two instances over the same schema with the same facts always have
        equal fingerprints; distinct contents collide only with hash-collision
        probability.  Stable within a process (not across processes), which is
        what the in-memory caches of :mod:`repro.runtime` need.
        """
        return (self._size, self._content_hash)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, relation: Union[str, Relation], values: Sequence[object]) -> bool:
        """Add a fact, returning ``True`` if it was new."""
        name = relation if isinstance(relation, str) else relation.name
        rel = self._schema.relation(name)
        row = tuple(values)
        rows = self._tuples[name]
        if row in rows:
            # Already validated when first added; skip re-validation.
            return False
        rel.check_values(row)
        rows.add(row)
        index_add(self._indexes[name], row)
        counts = self._adom_counts
        for place, value in enumerate(row):
            pair = (value, rel.domain_of(place))
            previous = counts.get(pair, 0)
            counts[pair] = previous + 1
            if previous == 0:
                self._invalidate_adom()
        self._frozen[name] = None
        self._content_hash ^= fact_hash(name, row)
        self._size += 1
        return True

    def add_fact(self, fact: Fact) -> bool:
        """Add a :class:`Fact`, returning ``True`` if it was new."""
        return self.add(fact.relation, fact.values)

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for fact in facts if self.add_fact(fact))

    def remove(self, relation: Union[str, Relation], values: Sequence[object]) -> bool:
        """Remove a fact, returning ``True`` if it was present."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._tuples:
            raise SchemaError(f"unknown relation {name!r}")
        row = tuple(values)
        rows = self._tuples[name]
        if row not in rows:
            return False
        rows.remove(row)
        rel = self._schema.relation(name)
        index_discard(self._indexes[name], row)
        counts = self._adom_counts
        for place, value in enumerate(row):
            pair = (value, rel.domain_of(place))
            remaining = counts.get(pair, 0) - 1
            if remaining <= 0:
                counts.pop(pair, None)
                self._invalidate_adom()
            else:
                counts[pair] = remaining
        self._frozen[name] = None
        self._content_hash ^= fact_hash(name, row)
        self._size -= 1
        return True

    def _invalidate_adom(self) -> None:
        self._adom_cache = None
        self._pools_cache = None

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def wire_facts(self) -> Dict[str, Tuple[Tuple[object, ...], ...]]:
        """The facts as a compact, deterministically ordered mapping.

        This is the instance's wire format: relation name to sorted tuple of
        rows, with empty relations omitted.  It is what :meth:`__reduce__`
        ships across a pickle boundary (the per-place indexes, caches, and
        fingerprint are rebuilt on the receiving side) and what the stable
        digests of :mod:`repro.runtime.serialize` hash.
        """
        return {
            name: tuple(sorted(rows, key=repr))
            for name, rows in self._tuples.items()
            if rows
        }

    def __reduce__(self):
        # Ship schema + facts, not the internal indexes: the constructor
        # re-derives indexes, caches, and the content fingerprint, so an
        # unpickled instance is indistinguishable from one built fresh in the
        # receiving process (in particular its fingerprint uses that
        # process's string hashing).
        return (self.__class__, (self._schema, self.wire_facts()))

    # ------------------------------------------------------------------ #
    # Set-like operations
    # ------------------------------------------------------------------ #
    def copy(self) -> "Instance":
        """A deep copy (sharing the schema)."""
        clone = Instance(self._schema)
        self._copy_storage_into(clone)
        return clone

    def _copy_storage_into(self, clone: "Instance") -> None:
        """Duplicate the tuple sets, indexes, and caches into ``clone``."""
        clone._tuples = {name: set(rows) for name, rows in self._tuples.items()}
        clone._indexes = {
            name: {key: set(bucket) for key, bucket in index.items()}
            for name, index in self._indexes.items()
        }
        clone._adom_counts = dict(self._adom_counts)
        clone._adom_cache = self._adom_cache
        clone._pools_cache = self._pools_cache
        clone._frozen = dict(self._frozen)
        clone._content_hash = self._content_hash
        clone._size = self._size

    def union(self, other: "Instance") -> "Instance":
        """A new instance containing the facts of both instances."""
        merged = self.copy()
        for fact in other.facts():
            merged.add_fact(fact)
        return merged

    def issubset(self, other: "Instance") -> bool:
        """Whether every fact of this instance is in ``other``."""
        for relation_name, rows in self._tuples.items():
            if not rows <= other._tuples.get(relation_name, set()):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._tuples == other._tuples

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance objects are mutable and unhashable")

    # ------------------------------------------------------------------ #
    # Active domain
    # ------------------------------------------------------------------ #
    def active_domain(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Constants appearing in the instance, paired with their abstract domains.

        Following the paper, the active domain is a set of pairs
        ``(value, domain)``: the same value occurring at attributes of two
        different domains yields two entries.  The set is maintained
        incrementally, so repeated calls are cheap.
        """
        cached = self._adom_cache
        if cached is None:
            cached = frozenset(self._adom_counts)
            self._adom_cache = cached
        return cached

    def active_values(self, domain: Optional[AbstractDomain] = None) -> FrozenSet[object]:
        """Values of the active domain, optionally restricted to one domain."""
        if domain is None:
            return frozenset(value for value, _ in self.active_domain())
        return frozenset(
            value for value, dom in self.active_domain() if dom == domain
        )

    def active_values_by_domain(self) -> Dict[AbstractDomain, Tuple[object, ...]]:
        """Active-domain values grouped by domain, each group sorted by ``repr``.

        Cached together with :meth:`active_domain`; the returned mapping and
        tuples must not be mutated.
        """
        pools = self._pools_cache
        if pools is None:
            grouped: Dict[AbstractDomain, list] = {}
            for value, domain in self.active_domain():
                grouped.setdefault(domain, []).append(value)
            pools = {
                domain: tuple(sorted(values, key=repr))
                for domain, values in grouped.items()
            }
            self._pools_cache = pools
        return pools

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for relation_name, rows in self._tuples.items():
            if rows:
                parts.append(f"{relation_name}:{len(rows)}")
        return f"Instance({', '.join(parts) or 'empty'})"
