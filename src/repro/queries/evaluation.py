"""Query evaluation over fact stores (instances, configurations, canonical
instances).

Evaluation of conjunctive queries is a homomorphism search; positive queries
are evaluated structurally (so no DNF blow-up is paid at evaluation time).
Both Boolean and non-Boolean queries are supported; non-Boolean evaluation
returns the set of answer tuples, i.e. the projections of the satisfying
assignments onto the free variables.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import QueryError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.homomorphism import FactStore, find_homomorphisms, has_homomorphism
from repro.queries.pq import AndNode, AtomNode, OrNode, PQNode, PositiveQuery
from repro.queries.terms import Variable, is_variable

__all__ = [
    "Query",
    "evaluate_boolean",
    "evaluate",
    "satisfying_assignments",
]

Query = Union[ConjunctiveQuery, PositiveQuery]


# --------------------------------------------------------------------------- #
# Conjunctive queries
# --------------------------------------------------------------------------- #
def _cq_assignments(
    query: ConjunctiveQuery,
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[Variable, object]]:
    yield from find_homomorphisms(query.atoms, data, partial, limit)


# --------------------------------------------------------------------------- #
# Positive queries: structural evaluation
# --------------------------------------------------------------------------- #
def _node_assignments(
    node: PQNode,
    data: FactStore,
    assignment: Dict[Variable, object],
) -> Iterator[Dict[Variable, object]]:
    """Yield assignments (extending ``assignment``) that satisfy ``node``.

    Disjunction yields the union of the children's assignments; conjunction
    threads assignments left to right.  Duplicates may be produced; callers
    deduplicate when materialising answer sets.
    """
    if isinstance(node, AtomNode):
        yield from find_homomorphisms([node.atom], data, assignment)
    elif isinstance(node, AndNode):
        def conjoin(index: int, current: Dict[Variable, object]) -> Iterator[Dict[Variable, object]]:
            if index == len(node.children):
                yield current
                return
            for extended in _node_assignments(node.children[index], data, current):
                yield from conjoin(index + 1, extended)

        yield from conjoin(0, assignment)
    elif isinstance(node, OrNode):
        for child in node.children:
            yield from _node_assignments(child, data, assignment)
    else:  # pragma: no cover - defensive
        raise QueryError(f"unknown positive-query node type: {type(node)!r}")


def satisfying_assignments(
    query: Query,
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[Variable, object]]:
    """Enumerate satisfying assignments of a CQ or PQ over ``data``."""
    if isinstance(query, ConjunctiveQuery):
        yield from _cq_assignments(query, data, partial, limit)
        return
    if isinstance(query, PositiveQuery):
        produced = 0
        for assignment in _node_assignments(query.root, data, dict(partial or {})):
            yield assignment
            produced += 1
            if limit is not None and produced >= limit:
                return
        return
    raise QueryError(f"unsupported query type: {type(query)!r}")


# --------------------------------------------------------------------------- #
# Public evaluation API
# --------------------------------------------------------------------------- #
def evaluate_boolean(
    query: Query,
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
) -> bool:
    """Whether a Boolean query (or a query read as Boolean) holds in ``data``."""
    for _ in satisfying_assignments(query, data, partial, limit=1):
        return True
    return False


def evaluate(
    query: Query,
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate a query and return its answer set.

    Boolean queries return ``frozenset({()})`` when true and ``frozenset()``
    when false, mirroring relational-algebra conventions.
    """
    free = query.free_variables
    answers: Set[Tuple[object, ...]] = set()
    for assignment in satisfying_assignments(query, data, partial):
        try:
            answers.add(tuple(assignment[variable] for variable in free))
        except KeyError as missing:
            raise QueryError(
                f"unsafe query {query.name!r}: free variable {missing} is not "
                f"bound by every disjunct"
            ) from None
        if not free:
            break
    return frozenset(answers)
