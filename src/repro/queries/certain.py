"""Certain answers over configurations (Section 2, "Immediate relevance").

For a configuration ``Conf`` and a query ``Q``, a tuple ``t`` is a *certain
answer* if ``t`` belongs to ``Q(I)`` for every instance ``I`` consistent with
``Conf`` (i.e. every ``I`` containing ``Conf``).  Because the query languages
of the paper (conjunctive and positive queries) are *monotone*, and ``Conf``
itself is the smallest consistent instance, the certain answers at ``Conf``
are exactly ``Q(Conf)``.  This module packages that observation behind an
explicit API so that the decision procedures read like the paper.

:class:`CertaintyFixpoint` is the incremental form of :func:`is_certain` for
the dynamic answering loop, which re-decides certainty at every configuration
the accesses produce.  Instead of evaluating from scratch each round, the
fixpoint compiles the Boolean query into a Datalog program with a nullary
goal and keeps a resumable :class:`~repro.datalog.engine.SemiNaiveEvaluation`
mirroring the configuration's facts; each access batch's merged facts advance
the state, so per-round certainty work is proportional to the delta.  The
state is keyed by *fact fingerprint lineage* — the ``(size, content_hash)``
prefix of :meth:`repro.data.Configuration.fingerprint`, which ignores seed
constants because certainty depends only on the facts.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.data import Configuration, Fact
from repro.data.indexing import fact_hash
from repro.datalog.engine import SemiNaiveEvaluation
from repro.datalog.program import Literal, Program, Rule
from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import Query, evaluate, evaluate_boolean
from repro.queries.pq import PositiveQuery

__all__ = ["CertaintyFixpoint", "certain_answers", "is_certain"]

GOAL_PREDICATE = "__certain__"


def certain_answers(query: Query, configuration: Configuration) -> FrozenSet[Tuple[object, ...]]:
    """The certain answers of ``query`` at ``configuration``.

    For monotone queries this equals the evaluation of the query over the
    configuration seen as an instance.
    """
    return evaluate(query, configuration)


def is_certain(query: Query, configuration: Configuration) -> bool:
    """Whether a Boolean query is certain (true) at the configuration."""
    return evaluate_boolean(query, configuration)


def compile_certainty_program(query: Query) -> Program:
    """Compile a Boolean query into a Datalog program deriving a nullary goal.

    A conjunctive query becomes one rule ``__certain__() :- body``; a
    positive query becomes one such rule per disjunct of its union-of-CQs
    normal form.  Raises :class:`~repro.exceptions.QueryError` for
    non-Boolean queries, unsupported query types, or a DNF blowup — callers
    fall back to :func:`is_certain` in that case.
    """
    if not query.is_boolean:
        raise QueryError("certainty programs are compiled from Boolean queries")
    if isinstance(query, ConjunctiveQuery):
        disjuncts: Tuple[ConjunctiveQuery, ...] = (query,)
    elif isinstance(query, PositiveQuery):
        disjuncts = query.to_ucq()
    else:
        raise QueryError(f"unsupported query type: {type(query)!r}")
    goal = Literal(GOAL_PREDICATE, ())
    program = Program()
    for disjunct in disjuncts:
        body = tuple(Literal(atom.relation.name, atom.terms) for atom in disjunct.atoms)
        program.add(Rule(goal, body))
    return program


class CertaintyFixpoint:
    """Incrementally maintained certainty of one Boolean query.

    The fixpoint owns a materialized semi-naive evaluation state mirroring a
    configuration's facts, and two entry points:

    * :meth:`absorb` feeds the facts an access batch merged.  Incoming facts
      are deduplicated against the mirrored state, so feeding *every* fact of
      every merged response (rather than only the new ones) is exact — the
      lineage fingerprint tracks the configuration's own fact fingerprint.
    * :meth:`check` decides certainty at a configuration.  When the tracked
      lineage matches the configuration's fact fingerprint the verdict is
      read off the retained state (outcome ``"advanced"``); otherwise the
      state is rebuilt from the configuration's facts (``"restarted"``, the
      only path that pays for a full evaluation).  Queries that do not
      compile report ``"unsupported"`` and callers fall back to the direct
      evaluation.

    Because the goal is monotone, a derived goal is final: subsequent absorbs
    cost one hash insert per fact with no rule application at all.  The
    materialized state is bounded by ``max_facts``; exceeding it drops the
    state, and later checks soundly restart.  Instances expose
    :meth:`stats`/:meth:`reset_stats` so they can be registered as cache
    gauges with :meth:`repro.runtime.RuntimeMetrics.register_cache`.
    """

    def __init__(self, query: Query, *, max_facts: int = 1_000_000) -> None:
        self._query = query
        self._max_facts = max_facts
        self._lock = threading.Lock()
        try:
            self._program: Optional[Program] = compile_certainty_program(query)
        except QueryError:
            self._program = None
        self._evaluation: Optional[SemiNaiveEvaluation] = None
        self._size = 0
        self._content = 0
        self._advanced = 0
        self._restarted = 0
        self._absorbed = 0

    @property
    def supported(self) -> bool:
        """Whether the query compiled; unsupported fixpoints answer nothing."""
        return self._program is not None

    @property
    def max_facts(self) -> int:
        """The materialized-state bound (facts) before the state is dropped."""
        return self._max_facts

    def lineage(self) -> Tuple[int, int]:
        """The tracked ``(size, content_hash)`` fact fingerprint."""
        with self._lock:
            return (self._size, self._content)

    def absorb(self, facts: Iterable[Fact]) -> int:
        """Advance the materialized state by merged facts; return new count.

        A no-op (returning 0) when the query is unsupported or no state is
        materialized yet — the next :meth:`check` restarts from the
        configuration, which is always sound.
        """
        if self._program is None:
            return 0
        with self._lock:
            evaluation = self._evaluation
            if evaluation is None:
                return 0
            fresh = evaluation.advance(
                (fact.relation, tuple(fact.values)) for fact in facts
            )
            for predicate, row in fresh:
                self._content ^= fact_hash(predicate, row)
            self._size += len(fresh)
            self._absorbed += len(fresh)
            if evaluation.fact_count() > self._max_facts:
                self._drop_locked()
            return len(fresh)

    def check(self, configuration: Configuration) -> Tuple[Optional[bool], str]:
        """Decide certainty at ``configuration``.

        Returns ``(verdict, outcome)`` with outcome ``"advanced"`` (lineage
        matched the retained state), ``"restarted"`` (state rebuilt from the
        configuration's facts), or ``"unsupported"`` (``verdict`` is ``None``
        and the caller must evaluate directly).
        """
        if self._program is None:
            return None, "unsupported"
        size, content = configuration.fingerprint()[:2]
        with self._lock:
            evaluation = self._evaluation
            if evaluation is not None and (size, content) == (self._size, self._content):
                self._advanced += 1
                return evaluation.goal_derived, "advanced"
            self._restarted += 1
            evaluation = SemiNaiveEvaluation(
                self._program,
                {
                    relation.name: configuration.tuples(relation.name)
                    for relation in configuration.schema.relations
                },
                goal=GOAL_PREDICATE,
            )
            verdict = evaluation.goal_derived
            if evaluation.fact_count() > self._max_facts:
                self._drop_locked()
            else:
                self._evaluation = evaluation
                self._size, self._content = size, content
            return verdict, "restarted"

    def peek(self, configuration: Configuration) -> Optional[bool]:
        """The verdict at ``configuration`` iff the lineage matches.

        Never rebuilds: returns ``None`` on a lineage mismatch (or when the
        query is unsupported), so callers that must not pay for a full
        evaluation — the multi-query server deciding what to ship to its
        process pool — can probe safely.
        """
        if self._program is None:
            return None
        size, content = configuration.fingerprint()[:2]
        with self._lock:
            evaluation = self._evaluation
            if evaluation is not None and (size, content) == (self._size, self._content):
                self._advanced += 1
                return evaluation.goal_derived
        return None

    def reset(self) -> None:
        """Drop the materialized state; later checks restart soundly."""
        with self._lock:
            self._drop_locked()

    def fact_count(self) -> int:
        """Number of facts currently materialized (0 when dropped)."""
        with self._lock:
            evaluation = self._evaluation
            return evaluation.fact_count() if evaluation is not None else 0

    def stats(self) -> Dict[str, object]:
        """Cache-gauge snapshot: advances as hits, restarts as misses."""
        with self._lock:
            evaluation = self._evaluation
            entries = evaluation.fact_count() if evaluation is not None else 0
            total = self._advanced + self._restarted
            return {
                "hits": self._advanced,
                "misses": self._restarted,
                "entries": entries,
                "absorbed": self._absorbed,
                "hit_rate": (self._advanced / total) if total else 0.0,
            }

    def reset_stats(self) -> None:
        """Zero the advance/restart/absorb counters (state is kept)."""
        with self._lock:
            self._advanced = 0
            self._restarted = 0
            self._absorbed = 0

    def _drop_locked(self) -> None:
        self._evaluation = None
        self._size = 0
        self._content = 0
