"""Certain answers over configurations (Section 2, "Immediate relevance").

For a configuration ``Conf`` and a query ``Q``, a tuple ``t`` is a *certain
answer* if ``t`` belongs to ``Q(I)`` for every instance ``I`` consistent with
``Conf`` (i.e. every ``I`` containing ``Conf``).  Because the query languages
of the paper (conjunctive and positive queries) are *monotone*, and ``Conf``
itself is the smallest consistent instance, the certain answers at ``Conf``
are exactly ``Q(Conf)``.  This module packages that observation behind an
explicit API so that the decision procedures read like the paper.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.data import Configuration
from repro.queries.evaluation import Query, evaluate, evaluate_boolean

__all__ = ["certain_answers", "is_certain"]


def certain_answers(query: Query, configuration: Configuration) -> FrozenSet[Tuple[object, ...]]:
    """The certain answers of ``query`` at ``configuration``.

    For monotone queries this equals the evaluation of the query over the
    configuration seen as an instance.
    """
    return evaluate(query, configuration)


def is_certain(query: Query, configuration: Configuration) -> bool:
    """Whether a Boolean query is certain (true) at the configuration."""
    return evaluate_boolean(query, configuration)
