"""Query languages and evaluation: CQs, positive queries, homomorphisms,
classical containment, certain answers."""

from repro.queries.atoms import Atom
from repro.queries.certain import certain_answers, is_certain
from repro.queries.containment import contained_in, cq_contained_in, ucq_contained_in
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import (
    Query,
    evaluate,
    evaluate_boolean,
    satisfying_assignments,
)
from repro.queries.homomorphism import (
    CanonicalInstance,
    canonical_instance,
    find_homomorphism,
    find_homomorphisms,
    freeze_query,
    has_homomorphism,
)
from repro.queries.parser import parse_atom, parse_cq, parse_pq, parse_query
from repro.queries.pq import AndNode, AtomNode, OrNode, PositiveQuery
from repro.queries.terms import Variable, constants_in, is_variable, variables_in

__all__ = [
    "Variable",
    "is_variable",
    "variables_in",
    "constants_in",
    "Atom",
    "ConjunctiveQuery",
    "PositiveQuery",
    "AtomNode",
    "AndNode",
    "OrNode",
    "Query",
    "evaluate",
    "evaluate_boolean",
    "satisfying_assignments",
    "CanonicalInstance",
    "canonical_instance",
    "freeze_query",
    "find_homomorphism",
    "find_homomorphisms",
    "has_homomorphism",
    "contained_in",
    "cq_contained_in",
    "ucq_contained_in",
    "certain_answers",
    "is_certain",
    "parse_atom",
    "parse_cq",
    "parse_pq",
    "parse_query",
]
