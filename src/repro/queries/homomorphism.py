"""Homomorphism search: the engine underneath evaluation and containment.

A homomorphism from a set of atoms into a fact store is an assignment of the
variables to values such that every atom, once ground, is a fact of the store.
The search is a backtracking join with a simple greedy atom ordering (most
bound variables first, smallest relation first).

Fact stores that expose a ``tuples_matching(relation_name, bound)`` method
(see :class:`~repro.data.instance.Instance` and :class:`CanonicalInstance`)
are joined through their (place, constant) indexes: at every step only the
tuples compatible with the constants and already-bound variables of the atom
are enumerated.  Stores exposing only ``tuples`` fall back to a full scan, so
any mapping-backed store keeps working.

The module also provides :class:`CanonicalInstance`, a lightweight fact store
used for canonical databases of queries: unlike
:class:`~repro.data.instance.Instance`, it skips domain validation, because
frozen variables are fresh symbols that enumerated domains would reject.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.data.indexing import candidates_from_index, index_add, iter_bound_matches
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable, is_variable, split_bound_free

__all__ = [
    "CanonicalInstance",
    "FactStore",
    "find_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "canonical_instance",
    "freeze_query",
]

_EMPTY: Tuple[Tuple[object, ...], ...] = ()


class CanonicalInstance:
    """A minimal indexed fact store: relation names to sets of tuples.

    Exposes the same ``tuples`` / ``tuples_matching`` interface as
    :class:`~repro.data.instance.Instance`, which is all the homomorphism
    search needs.
    """

    def __init__(
        self, facts: Optional[Mapping[str, Iterable[Tuple[object, ...]]]] = None
    ) -> None:
        self._tuples: Dict[str, Set[Tuple[object, ...]]] = {}
        self._indexes: Dict[str, Dict[Tuple[int, object], Set[Tuple[object, ...]]]] = {}
        if facts:
            for relation_name, rows in facts.items():
                for row in rows:
                    self.add(relation_name, row)

    def add(self, relation_name: str, values: Sequence[object]) -> None:
        """Add a fact without any validation."""
        row = tuple(values)
        rows = self._tuples.setdefault(relation_name, set())
        if row in rows:
            return
        rows.add(row)
        index_add(self._indexes.setdefault(relation_name, {}), row)

    def tuples(self, relation: Union[str, object]) -> FrozenSet[Tuple[object, ...]]:
        """Tuples stored for the relation (empty if unknown)."""
        name = relation if isinstance(relation, str) else getattr(relation, "name")
        return frozenset(self._tuples.get(name, set()))

    def tuples_matching(
        self, relation: Union[str, object], bound: Mapping[int, object]
    ) -> Iterable[Tuple[object, ...]]:
        """Tuples agreeing with ``bound`` (``place -> value``), via the index.

        Canonical instances follow a build-then-query lifecycle, so internal
        sets may be returned directly; do not mutate them, and do not mutate
        the store while iterating lazily over matches.
        """
        name = relation if isinstance(relation, str) else getattr(relation, "name")
        rows = self._tuples.get(name)
        if rows is None:
            return _EMPTY
        return candidates_from_index(rows, self._indexes.get(name, {}), bound)

    def contains(self, relation_name: str, values: Sequence[object]) -> bool:
        """Whether the fact is stored."""
        return tuple(values) in self._tuples.get(relation_name, set())

    def relation_names(self) -> FrozenSet[str]:
        """Names of the relations having at least one fact."""
        return frozenset(name for name, rows in self._tuples.items() if rows)

    def relation_size(self, relation: Union[str, object]) -> int:
        """Number of tuples stored for the relation (0 if unknown)."""
        name = relation if isinstance(relation, str) else getattr(relation, "name")
        return len(self._tuples.get(name, ()))

    def size(self) -> int:
        """Total number of facts."""
        return sum(len(rows) for rows in self._tuples.values())

    def copy(self) -> "CanonicalInstance":
        """A shallow copy."""
        return CanonicalInstance(self._tuples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CanonicalInstance(size={self.size()})"


#: Anything exposing ``tuples(relation_name_or_relation) -> iterable of tuples``.
FactStore = object


def _relation_size(data: FactStore, relation_name: str) -> int:
    sizer = getattr(data, "relation_size", None)
    if sizer is not None:
        try:
            return sizer(relation_name)
        except Exception:  # pragma: no cover - defensive
            return 0
    try:
        return len(data.tuples(relation_name))
    except Exception:  # pragma: no cover - defensive
        return 0


def _atom_order(atoms: Sequence[Atom], data: FactStore) -> List[Atom]:
    """Greedy join order: prefer atoms with many already-bound variables."""
    remaining = list(atoms)
    ordered: List[Atom] = []
    bound: Set[Variable] = set()
    while remaining:
        def score(atom: Atom) -> Tuple[int, int]:
            unbound = sum(
                1 for term in atom.terms if is_variable(term) and term not in bound
            )
            return (unbound, _relation_size(data, atom.relation.name))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables)
    return ordered


def _match_atom(
    atom: Atom, data: FactStore, assignment: Dict[Variable, object]
) -> Iterator[Dict[Variable, object]]:
    """Yield extensions of ``assignment`` making ``atom`` a fact of ``data``."""
    matcher = getattr(data, "tuples_matching", None)
    if matcher is not None:
        # Indexed path: constants and already-bound variables become index
        # constraints, so only compatible tuples are enumerated.
        bound, free = split_bound_free(atom.terms, assignment)
        rows = matcher(atom.relation.name, bound)
        yield from iter_bound_matches(rows, free, assignment, arity=len(atom.terms))
        return

    rows = data.tuples(atom.relation.name)
    for row in rows:
        extension = dict(assignment)
        matched = True
        for place, term in enumerate(atom.terms):
            value = row[place]
            if is_variable(term):
                bound_value = extension.get(term, _UNBOUND)
                if bound_value is _UNBOUND:
                    extension[term] = value
                elif bound_value != value:
                    matched = False
                    break
            elif term != value:
                matched = False
                break
        if matched:
            yield extension


_UNBOUND = object()


def find_homomorphisms(
    atoms: Sequence[Atom],
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[Variable, object]]:
    """Enumerate homomorphisms of ``atoms`` into ``data``.

    ``partial`` pre-binds some variables; ``limit`` stops the enumeration
    after the given number of homomorphisms.
    """
    ordered = _atom_order(atoms, data)
    initial: Dict[Variable, object] = dict(partial or {})
    produced = 0

    def backtrack(index: int, assignment: Dict[Variable, object]) -> Iterator[Dict[Variable, object]]:
        if index == len(ordered):
            yield dict(assignment)
            return
        for extension in _match_atom(ordered[index], data, assignment):
            yield from backtrack(index + 1, extension)

    for homomorphism in backtrack(0, initial):
        yield homomorphism
        produced += 1
        if limit is not None and produced >= limit:
            return


def find_homomorphism(
    atoms: Sequence[Atom],
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
) -> Optional[Dict[Variable, object]]:
    """The first homomorphism found, or ``None``."""
    for homomorphism in find_homomorphisms(atoms, data, partial, limit=1):
        return homomorphism
    return None


def has_homomorphism(
    atoms: Sequence[Atom],
    data: FactStore,
    partial: Optional[Mapping[Variable, object]] = None,
) -> bool:
    """Whether at least one homomorphism exists."""
    return find_homomorphism(atoms, data, partial) is not None


def freeze_query(
    query: ConjunctiveQuery, prefix: str = "_frozen_"
) -> Tuple[CanonicalInstance, Dict[Variable, object]]:
    """Freeze a conjunctive query into its canonical instance.

    Returns the canonical instance together with the assignment mapping each
    variable to its frozen constant.
    """
    assignment = {
        variable: f"{prefix}{variable.name}" for variable in query.variables
    }
    store = CanonicalInstance()
    for atom in query.atoms:
        store.add(atom.relation.name, atom.ground_values(assignment))
    return store, assignment


def canonical_instance(query: ConjunctiveQuery, prefix: str = "_frozen_") -> CanonicalInstance:
    """The canonical instance (frozen body) of a conjunctive query."""
    store, _ = freeze_query(query, prefix)
    return store
