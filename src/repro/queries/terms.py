"""Terms of queries: variables and constants.

A term is either a :class:`Variable` or a constant.  Constants are plain
Python values (strings, numbers, ...); their abstract domain is implied by
the place they occupy in an atom.  Variables are named objects; the paper
requires that a variable shared across subgoals always occupies attributes of
the same abstract domain — this is validated by the query classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple, Union

__all__ = [
    "Variable",
    "Term",
    "canonical_term",
    "is_variable",
    "variables_in",
    "constants_in",
    "split_bound_free",
]


@dataclass(frozen=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.name}"


Term = Union[Variable, object]


def is_variable(term: Term) -> bool:
    """Whether ``term`` is a :class:`Variable` (anything else is a constant)."""
    return isinstance(term, Variable)


def canonical_term(term: Term) -> Tuple[str, str]:
    """A process-stable structural encoding of one term.

    Variables and constants are tagged apart, and constants are rendered
    through ``repr`` so the encoding never depends on per-process hashing.
    Used by the stable query digests of :mod:`repro.runtime.serialize` (the
    keys of the persistent witness cache).
    """
    if isinstance(term, Variable):
        return ("var", term.name)
    return ("const", repr(term))


def variables_in(terms: Iterable[Term]) -> Tuple[Variable, ...]:
    """The variables among ``terms``, in first-occurrence order, deduplicated."""
    seen = []
    for term in terms:
        if is_variable(term) and term not in seen:
            seen.append(term)
    return tuple(seen)


def constants_in(terms: Iterable[Term]) -> Tuple[object, ...]:
    """The constants among ``terms``, in first-occurrence order, deduplicated."""
    seen = []
    for term in terms:
        if not is_variable(term) and term not in seen:
            seen.append(term)
    return tuple(seen)


_UNBOUND = object()


def split_bound_free(
    terms: Iterable[Term], assignment: "Mapping[Variable, object]"
) -> "Tuple[Dict[int, object], List[Tuple[int, Variable]]]":
    """Partition term places into bound constraints and free variables.

    Constants and variables already bound by ``assignment`` become
    ``place -> value`` constraints (usable as index lookups); unbound
    variables are returned as ``(place, variable)`` pairs.  This is the
    shared preprocessing step of the indexed matchers in
    :mod:`repro.queries.homomorphism` and :mod:`repro.datalog.engine`.
    """
    bound: Dict[int, object] = {}
    free: List[Tuple[int, Variable]] = []
    for place, term in enumerate(terms):
        if isinstance(term, Variable):
            value = assignment.get(term, _UNBOUND)
            if value is _UNBOUND:
                free.append((place, term))
            else:
                bound[place] = value
        else:
            bound[place] = term
    return bound, free
