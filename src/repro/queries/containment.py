"""Classical query containment (no access limitations).

This is the textbook notion used as a baseline and inside several reductions:

* containment of conjunctive queries is decided with the Chandra–Merlin
  homomorphism criterion (freeze the contained query, evaluate the containing
  query on the canonical instance);
* containment of unions of conjunctive queries reduces to containing each
  disjunct;
* containment of positive queries goes through the DNF of the contained query
  (the containing query is evaluated structurally, so only one side pays the
  DNF cost).

Containment *under access limitations* — the notion the paper studies — lives
in :mod:`repro.core.containment` and behaves very differently (Example 3.2).
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import Query, evaluate_boolean
from repro.queries.homomorphism import freeze_query
from repro.queries.pq import PositiveQuery

__all__ = [
    "cq_contained_in",
    "ucq_contained_in",
    "contained_in",
]


def _check_same_arity(query1: Query, query2: Query) -> None:
    if len(query1.free_variables) != len(query2.free_variables):
        raise QueryError(
            "containment requires queries of the same arity: "
            f"{len(query1.free_variables)} vs {len(query2.free_variables)}"
        )


def cq_contained_in(query1: ConjunctiveQuery, query2: ConjunctiveQuery) -> bool:
    """Chandra–Merlin containment test ``query1 ⊑ query2``.

    Freeze ``query1``; ``query1 ⊑ query2`` iff the frozen head of ``query1``
    is an answer of ``query2`` on the canonical instance.
    """
    _check_same_arity(query1, query2)
    store, assignment = freeze_query(query1)
    partial = {
        variable2: assignment[variable1]
        for variable1, variable2 in zip(query1.free_variables, query2.free_variables)
    }
    return evaluate_boolean(query2, store, partial)


def _disjuncts(query: Query) -> Sequence[ConjunctiveQuery]:
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    if isinstance(query, PositiveQuery):
        return query.to_ucq()
    raise QueryError(f"unsupported query type: {type(query)!r}")


def ucq_contained_in(
    disjuncts1: Sequence[ConjunctiveQuery], query2: Query
) -> bool:
    """Containment of a union of CQs in an arbitrary (positive) query."""
    for disjunct in disjuncts1:
        store, assignment = freeze_query(disjunct)
        partial = {
            variable2: assignment[variable1]
            for variable1, variable2 in zip(
                disjunct.free_variables, query2.free_variables
            )
        }
        if not evaluate_boolean(query2, store, partial):
            return False
    return True


def contained_in(query1: Query, query2: Query) -> bool:
    """Classical containment ``query1 ⊑ query2`` for CQs and positive queries."""
    _check_same_arity(query1, query2)
    return ucq_contained_in(_disjuncts(query1), query2)
