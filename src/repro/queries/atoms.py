"""Atoms: a relation applied to a tuple of terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.exceptions import QueryError
from repro.queries.terms import (
    Term,
    Variable,
    canonical_term,
    constants_in,
    is_variable,
    variables_in,
)
from repro.schema import AbstractDomain, Relation

__all__ = ["Atom"]


@dataclass(frozen=True)
class Atom:
    """An atom ``R(t1, ..., tk)`` over a relation ``R`` of the schema."""

    relation: Relation
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.terms) != self.relation.arity:
            raise QueryError(
                f"atom over {self.relation.name!r} has {len(self.terms)} terms "
                f"but the relation has arity {self.relation.arity}"
            )
        for place, term in enumerate(self.terms):
            if not is_variable(term):
                domain = self.relation.domain_of(place)
                if not domain.admits(term):
                    raise QueryError(
                        f"constant {term!r} is not admitted by domain "
                        f"{domain.name!r} at place {place} of {self.relation.name!r}"
                    )

    # ------------------------------------------------------------------ #
    # Term accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Variables of the atom, deduplicated, in order."""
        return variables_in(self.terms)

    @property
    def constants(self) -> Tuple[object, ...]:
        """Constants of the atom, deduplicated, in order."""
        return constants_in(self.terms)

    def variable_domains(self) -> Dict[Variable, AbstractDomain]:
        """Map each variable to the domain of (one of) its places in this atom."""
        domains: Dict[Variable, AbstractDomain] = {}
        for place, term in enumerate(self.terms):
            if is_variable(term):
                domains.setdefault(term, self.relation.domain_of(place))
        return domains

    def places_of(self, variable: Variable) -> Tuple[int, ...]:
        """All places at which ``variable`` occurs in this atom."""
        return tuple(
            place for place, term in enumerate(self.terms) if term == variable
        )

    # ------------------------------------------------------------------ #
    # Substitution
    # ------------------------------------------------------------------ #
    def substitute(self, assignment: Mapping[Variable, Term]) -> "Atom":
        """Apply a (possibly partial) variable assignment to the atom."""
        new_terms = tuple(
            assignment.get(term, term) if is_variable(term) else term
            for term in self.terms
        )
        return Atom(self.relation, new_terms)

    def ground_values(self, assignment: Mapping[Variable, object]) -> Tuple[object, ...]:
        """The fully ground tuple obtained by applying a total assignment."""
        values = []
        for term in self.terms:
            if is_variable(term):
                if term not in assignment:
                    raise QueryError(
                        f"assignment does not cover variable {term!r} of {self!r}"
                    )
                values.append(assignment[term])
            else:
                values.append(term)
        return tuple(values)

    def is_ground(self) -> bool:
        """Whether the atom contains no variable."""
        return not any(is_variable(term) for term in self.terms)

    def canonical_form(self) -> Tuple[object, ...]:
        """A process-stable structural encoding (relation name + terms)."""
        return (self.relation.name, tuple(canonical_term(term) for term in self.terms))

    def rename(self, renaming: Mapping[Variable, Variable]) -> "Atom":
        """Rename variables according to ``renaming`` (missing keys unchanged)."""
        return self.substitute(dict(renaming))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(
            term.name if is_variable(term) else repr(term) for term in self.terms
        )
        return f"{self.relation.name}({rendered})"
