"""A small textual syntax for queries.

The syntax is deliberately tiny — it exists so that examples and tests read
like the paper:

* **terms**: bare identifiers are variables (``x``, ``empId``); constants are
  single- or double-quoted strings (``'Illinois'``) or numeric literals
  (``3``, ``2.5``);
* **atoms**: ``Relation(term, ..., term)``;
* **conjunctive queries**: ``Q(x, y) :- R(x, z), S(z, y)``; the head may be
  omitted for Boolean queries (``R(x, z), S(z, y)``);
* **positive queries**: an expression over atoms with ``&`` (and), ``|``
  (or), and parentheses, optionally with a head: ``Q() :- R(x) & (S(x) | T(x))``.

:func:`parse_query` picks CQ or PQ automatically (a query containing ``|`` or
parenthesised groups is parsed as a positive query).
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import QueryError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.pq import AndNode, AtomNode, OrNode, PQNode, PositiveQuery
from repro.queries.terms import Term, Variable
from repro.schema import Schema

__all__ = ["parse_atom", "parse_cq", "parse_pq", "parse_query"]

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        :-                     |   # rule separator
        [(),&|]                |   # punctuation
        '[^']*'                |   # single-quoted constant
        "[^"]*"                |   # double-quoted constant
        -?\d+\.\d+             |   # float literal
        -?\d+                  |   # integer literal
        [A-Za-z_][A-Za-z_0-9-]*    # identifier (hyphens allowed after the
                                   # first character, so generated query
                                   # names like ``bank0-Illinois-30yr``
                                   # round-trip through str() and back —
                                   # the network service parses submitted
                                   # query text with this grammar)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise QueryError(f"cannot tokenize query text at: {text[position:]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[str]) -> None:
        self._tokens = list(tokens)
        self._index = 0

    def peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query text")
        self._index += 1
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise QueryError(f"expected {token!r} but found {found!r}")

    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_term(token: str) -> Term:
    if token.startswith(("'", '"')):
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?\d+\.\d+", token):
        return float(token)
    return Variable(token)


def _parse_atom(stream: _TokenStream, schema: Schema) -> Atom:
    relation_name = stream.next()
    relation = schema.relation(relation_name)
    stream.expect("(")
    terms: List[Term] = []
    if stream.peek() == ")":
        stream.next()
        return Atom(relation, tuple(terms))
    while True:
        terms.append(_parse_term(stream.next()))
        token = stream.next()
        if token == ")":
            break
        if token != ",":
            raise QueryError(f"expected ',' or ')' in atom, found {token!r}")
    return Atom(relation, tuple(terms))


def parse_atom(schema: Schema, text: str) -> Atom:
    """Parse a single atom such as ``"Employee(x, 'loan officer', o)"``."""
    stream = _TokenStream(_tokenize(text))
    atom = _parse_atom(stream, schema)
    if not stream.exhausted():
        raise QueryError(f"trailing tokens after atom: {stream.peek()!r}")
    return atom


def _parse_head(stream: _TokenStream) -> Tuple[str, Tuple[Variable, ...]]:
    """Parse ``Name(x, y)`` followed by ``:-``; caller checks it is a head."""
    name = stream.next()
    stream.expect("(")
    variables: List[Variable] = []
    if stream.peek() != ")":
        while True:
            term = _parse_term(stream.next())
            if not isinstance(term, Variable):
                raise QueryError("query heads may only contain variables")
            variables.append(term)
            token = stream.next()
            if token == ")":
                break
            if token != ",":
                raise QueryError(f"expected ',' or ')' in head, found {token!r}")
    else:
        stream.next()
    stream.expect(":-")
    return name, tuple(variables)


def _split_head(text: str) -> Tuple[Optional[str], str]:
    if ":-" in text:
        head, body = text.split(":-", 1)
        return head.strip(), body.strip()
    return None, text.strip()


def parse_cq(schema: Schema, text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a conjunctive query (comma- or ``&``-separated atoms)."""
    head_text, body_text = _split_head(text)
    free: Tuple[Variable, ...] = ()
    if head_text is not None:
        head_stream = _TokenStream(_tokenize(head_text + " :- "))
        name, free = _parse_head(head_stream)
    stream = _TokenStream(_tokenize(body_text))
    atoms: List[Atom] = []
    while True:
        atoms.append(_parse_atom(stream, schema))
        if stream.exhausted():
            break
        separator = stream.next()
        if separator not in (",", "&"):
            raise QueryError(
                f"expected ',' or '&' between atoms, found {separator!r}"
            )
    return ConjunctiveQuery(tuple(atoms), free, name)


def _parse_pq_expression(stream: _TokenStream, schema: Schema) -> PQNode:
    node = _parse_pq_conjunction(stream, schema)
    children = [node]
    while stream.peek() == "|":
        stream.next()
        children.append(_parse_pq_conjunction(stream, schema))
    if len(children) == 1:
        return children[0]
    return OrNode(tuple(children))


def _parse_pq_conjunction(stream: _TokenStream, schema: Schema) -> PQNode:
    node = _parse_pq_factor(stream, schema)
    children = [node]
    while stream.peek() in ("&", ","):
        stream.next()
        children.append(_parse_pq_factor(stream, schema))
    if len(children) == 1:
        return children[0]
    return AndNode(tuple(children))


def _parse_pq_factor(stream: _TokenStream, schema: Schema) -> PQNode:
    if stream.peek() == "(":
        stream.next()
        node = _parse_pq_expression(stream, schema)
        stream.expect(")")
        return node
    return AtomNode(_parse_atom(stream, schema))


def parse_pq(schema: Schema, text: str, name: str = "Q") -> PositiveQuery:
    """Parse a positive query using ``&``, ``|``, and parentheses."""
    head_text, body_text = _split_head(text)
    free: Tuple[Variable, ...] = ()
    if head_text is not None:
        head_stream = _TokenStream(_tokenize(head_text + " :- "))
        name, free = _parse_head(head_stream)
    stream = _TokenStream(_tokenize(body_text))
    root = _parse_pq_expression(stream, schema)
    if not stream.exhausted():
        raise QueryError(f"trailing tokens after query: {stream.peek()!r}")
    return PositiveQuery(root, free, name)


def parse_query(
    schema: Schema, text: str, name: str = "Q"
) -> Union[ConjunctiveQuery, PositiveQuery]:
    """Parse either a CQ or a PQ depending on the syntax used."""
    _, body = _split_head(text)
    if "|" in body or "(" == body.lstrip()[:1]:
        return parse_pq(schema, text, name)
    return parse_cq(schema, text, name)
