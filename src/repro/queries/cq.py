"""Conjunctive queries (CQs).

A conjunctive query is a conjunction of atoms with an (optionally empty) tuple
of free variables; all other variables are implicitly existentially
quantified.  Boolean queries have no free variables.  The paper's domain
discipline — a variable shared across subgoals must always occupy attributes
of the same abstract domain — is enforced at construction time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.queries.atoms import Atom
from repro.queries.terms import Term, Variable, is_variable
from repro.schema import AbstractDomain, Relation

__all__ = ["ConjunctiveQuery"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: a tuple of atoms and a tuple of free variables."""

    atoms: Tuple[Atom, ...]
    free_variables: Tuple[Variable, ...] = ()
    name: str = field(default="Q", compare=False)

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError("a conjunctive query needs at least one atom")
        all_vars = set(self.variables)
        for variable in self.free_variables:
            if variable not in all_vars:
                raise QueryError(
                    f"free variable {variable!r} does not occur in any atom"
                )
        self._check_domain_consistency()

    def _check_domain_consistency(self) -> None:
        domains: Dict[Variable, AbstractDomain] = {}
        for atom in self.atoms:
            for place, term in enumerate(atom.terms):
                if not is_variable(term):
                    continue
                domain = atom.relation.domain_of(place)
                previous = domains.get(term)
                if previous is None:
                    domains[term] = domain
                elif previous != domain:
                    raise QueryError(
                        f"variable {term!r} occurs at attributes of different "
                        f"abstract domains ({previous.name!r} and {domain.name!r})"
                    )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def make(
        atoms: Sequence[Atom],
        free_variables: Sequence[Variable] = (),
        name: str = "Q",
    ) -> "ConjunctiveQuery":
        """Build a query from sequences (tuples are made internally)."""
        return ConjunctiveQuery(tuple(atoms), tuple(free_variables), name)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, deduplicated, in first-occurrence order."""
        seen: List[Variable] = []
        for atom in self.atoms:
            for variable in atom.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def existential_variables(self) -> Tuple[Variable, ...]:
        """Variables that are not free."""
        free = set(self.free_variables)
        return tuple(variable for variable in self.variables if variable not in free)

    @property
    def constants(self) -> Tuple[object, ...]:
        """All constants, deduplicated, in first-occurrence order."""
        seen: List[object] = []
        for atom in self.atoms:
            for constant in atom.constants:
                if constant not in seen:
                    seen.append(constant)
        return tuple(seen)

    def constants_with_domains(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Constants paired with the abstract domains of the places they occupy."""
        pairs: Set[Tuple[object, AbstractDomain]] = set()
        for atom in self.atoms:
            for place, term in enumerate(atom.terms):
                if not is_variable(term):
                    pairs.add((term, atom.relation.domain_of(place)))
        return frozenset(pairs)

    @property
    def is_boolean(self) -> bool:
        """Whether the query has no free variables."""
        return not self.free_variables

    @property
    def arity(self) -> int:
        """Number of free variables (the output arity)."""
        return len(self.free_variables)

    def relations(self) -> Tuple[Relation, ...]:
        """Relations mentioned by the query, deduplicated."""
        seen: List[Relation] = []
        for atom in self.atoms:
            if atom.relation not in seen:
                seen.append(atom.relation)
        return tuple(seen)

    def relation_names(self) -> FrozenSet[str]:
        """Names of the relations mentioned by the query."""
        return frozenset(atom.relation.name for atom in self.atoms)

    def atoms_over(self, relation_name: str) -> Tuple[Atom, ...]:
        """Atoms of the query whose relation is called ``relation_name``."""
        return tuple(
            atom for atom in self.atoms if atom.relation.name == relation_name
        )

    def occurrences(self, relation_name: str) -> int:
        """How many subgoals use the relation called ``relation_name``."""
        return len(self.atoms_over(relation_name))

    def variable_domains(self) -> Dict[Variable, AbstractDomain]:
        """Map each variable to its (unique) abstract domain."""
        domains: Dict[Variable, AbstractDomain] = {}
        for atom in self.atoms:
            domains.update(
                {
                    variable: domain
                    for variable, domain in atom.variable_domains().items()
                    if variable not in domains
                }
            )
        return domains

    def output_domains(self) -> Tuple[AbstractDomain, ...]:
        """Abstract domains of the free variables, in order."""
        domains = self.variable_domains()
        return tuple(domains[variable] for variable in self.free_variables)

    # ------------------------------------------------------------------ #
    # Connectivity (used by Proposition 4.3)
    # ------------------------------------------------------------------ #
    def connected_components(self) -> Tuple[Tuple[Atom, ...], ...]:
        """Partition the subgoals into connected components of the query graph.

        Two subgoals are connected when they share a variable (Gaifman graph
        on subgoals).  Ground atoms form singleton components.
        """
        remaining = list(range(len(self.atoms)))
        components: List[Tuple[Atom, ...]] = []
        while remaining:
            frontier = [remaining.pop(0)]
            component = set(frontier)
            while frontier:
                index = frontier.pop()
                atom_vars = set(self.atoms[index].variables)
                still_left = []
                for other in remaining:
                    if atom_vars & set(self.atoms[other].variables):
                        component.add(other)
                        frontier.append(other)
                    else:
                        still_left.append(other)
                remaining = still_left
            components.append(tuple(self.atoms[index] for index in sorted(component)))
        return tuple(components)

    def is_connected(self) -> bool:
        """Whether the query graph has a single connected component."""
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def substitute(self, assignment: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a (possibly partial) substitution to every atom.

        Free variables that get substituted by constants are dropped from the
        free-variable tuple.
        """
        new_atoms = tuple(atom.substitute(assignment) for atom in self.atoms)
        new_free = tuple(
            assignment.get(variable, variable)
            for variable in self.free_variables
        )
        kept_free = tuple(term for term in new_free if is_variable(term))
        return ConjunctiveQuery(new_atoms, kept_free, self.name)

    def rename_apart(self, suffix: str) -> "ConjunctiveQuery":
        """Rename every variable by appending ``suffix`` (for disjoint unions)."""
        renaming = {
            variable: Variable(variable.name + suffix) for variable in self.variables
        }
        return self.substitute(renaming)

    def conjoin(self, other: "ConjunctiveQuery", name: Optional[str] = None) -> "ConjunctiveQuery":
        """The conjunction of two queries (free variables are concatenated)."""
        free = list(self.free_variables)
        for variable in other.free_variables:
            if variable not in free:
                free.append(variable)
        return ConjunctiveQuery(
            self.atoms + other.atoms, tuple(free), name or self.name
        )

    def without_atoms(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        """The query with the given subgoals removed (must stay non-empty)."""
        dropped = list(atoms)
        kept = [atom for atom in self.atoms if atom not in dropped]
        if not kept:
            raise QueryError("cannot remove every subgoal of a conjunctive query")
        free = tuple(
            variable
            for variable in self.free_variables
            if any(variable in atom.variables for atom in kept)
        )
        return ConjunctiveQuery(tuple(kept), free, self.name)

    def boolean_closure(self) -> "ConjunctiveQuery":
        """The Boolean query obtained by dropping all free variables."""
        return ConjunctiveQuery(self.atoms, (), self.name)

    def canonical_form(self) -> Tuple[object, ...]:
        """A process-stable structural encoding of the query.

        Two queries compare equal exactly when their canonical forms are
        equal (the ``name`` is excluded, matching ``compare=False``), and the
        encoding contains only strings and tuples — so hashing it with a
        cryptographic digest gives the same token in every process, which is
        what the persistent witness cache keys on.
        """
        return (
            "cq",
            tuple(atom.canonical_form() for atom in self.atoms),
            tuple(variable.name for variable in self.free_variables),
        )

    # ------------------------------------------------------------------ #
    # Canonical instance (freezing)
    # ------------------------------------------------------------------ #
    def frozen_facts(self, prefix: str = "_frozen_") -> Tuple[Tuple[str, Tuple[object, ...]], ...]:
        """The canonical-database facts of the query.

        Every variable ``x`` is replaced by the fresh constant ``prefix + x``.
        Used by the classical containment test and by several reductions.
        """
        assignment = {
            variable: f"{prefix}{variable.name}" for variable in self.variables
        }
        facts = []
        for atom in self.atoms:
            facts.append((atom.relation.name, atom.ground_values(assignment)))
        return tuple(facts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = (
            f"{self.name}({', '.join(v.name for v in self.free_variables)})"
            if self.free_variables
            else f"{self.name}()"
        )
        body = " & ".join(repr(atom) for atom in self.atoms)
        return f"{head} :- {body}"
