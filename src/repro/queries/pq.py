"""Positive (existential) queries: arbitrary nestings of conjunction and
disjunction over atoms, with implicit existential quantification.

The paper calls these *positive queries* (PQs).  They strictly generalise
conjunctive queries and unions of conjunctive queries.  This module models
them as expression trees and provides a conversion to disjunctive normal form
(a union of conjunctive queries), which several decision procedures rely on;
the conversion is exponential in the worst case, so it accepts a size guard.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import QueryError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term, Variable, is_variable
from repro.schema import AbstractDomain, Relation

__all__ = ["PQNode", "AtomNode", "AndNode", "OrNode", "PositiveQuery"]


class PQNode:
    """Base class of positive-query expression nodes."""

    def atoms(self) -> Tuple[Atom, ...]:
        """All atoms occurring in the subtree."""
        raise NotImplementedError

    def substitute(self, assignment: Mapping[Variable, Term]) -> "PQNode":
        """Apply a substitution to the subtree."""
        raise NotImplementedError

    def dnf(self) -> Tuple[Tuple[Atom, ...], ...]:
        """Disjunctive normal form: a tuple of conjunctions of atoms."""
        raise NotImplementedError

    def canonical_form(self) -> Tuple[object, ...]:
        """A process-stable structural encoding of the subtree."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of atoms in the subtree (with multiplicity)."""
        return len(self.atoms())


@dataclass(frozen=True)
class AtomNode(PQNode):
    """A leaf: a single atom."""

    atom: Atom

    def atoms(self) -> Tuple[Atom, ...]:
        return (self.atom,)

    def substitute(self, assignment: Mapping[Variable, Term]) -> "AtomNode":
        return AtomNode(self.atom.substitute(assignment))

    def dnf(self) -> Tuple[Tuple[Atom, ...], ...]:
        return ((self.atom,),)

    def canonical_form(self) -> Tuple[object, ...]:
        return ("atom", self.atom.canonical_form())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.atom)


@dataclass(frozen=True)
class AndNode(PQNode):
    """A conjunction of sub-expressions."""

    children: Tuple[PQNode, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("an And node needs at least one child")

    def atoms(self) -> Tuple[Atom, ...]:
        collected: List[Atom] = []
        for child in self.children:
            collected.extend(child.atoms())
        return tuple(collected)

    def substitute(self, assignment: Mapping[Variable, Term]) -> "AndNode":
        return AndNode(tuple(child.substitute(assignment) for child in self.children))

    def dnf(self) -> Tuple[Tuple[Atom, ...], ...]:
        child_dnfs = [child.dnf() for child in self.children]
        conjunctions: List[Tuple[Atom, ...]] = []
        for combination in itertools.product(*child_dnfs):
            merged: List[Atom] = []
            for conjunct in combination:
                merged.extend(conjunct)
            conjunctions.append(tuple(merged))
        return tuple(conjunctions)

    def canonical_form(self) -> Tuple[object, ...]:
        return ("and", tuple(child.canonical_form() for child in self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " & ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class OrNode(PQNode):
    """A disjunction of sub-expressions."""

    children: Tuple[PQNode, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("an Or node needs at least one child")

    def atoms(self) -> Tuple[Atom, ...]:
        collected: List[Atom] = []
        for child in self.children:
            collected.extend(child.atoms())
        return tuple(collected)

    def substitute(self, assignment: Mapping[Variable, Term]) -> "OrNode":
        return OrNode(tuple(child.substitute(assignment) for child in self.children))

    def dnf(self) -> Tuple[Tuple[Atom, ...], ...]:
        conjunctions: List[Tuple[Atom, ...]] = []
        for child in self.children:
            conjunctions.extend(child.dnf())
        return tuple(conjunctions)

    def canonical_form(self) -> Tuple[object, ...]:
        return ("or", tuple(child.canonical_form() for child in self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " | ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class PositiveQuery:
    """A positive query: an expression tree plus a tuple of free variables."""

    root: PQNode
    free_variables: Tuple[Variable, ...] = ()
    name: str = field(default="Q", compare=False)

    def __post_init__(self) -> None:
        all_vars = set(self.variables)
        for variable in self.free_variables:
            if variable not in all_vars:
                raise QueryError(
                    f"free variable {variable!r} does not occur in the query"
                )
        self._check_domain_consistency()

    def _check_domain_consistency(self) -> None:
        domains: Dict[Variable, AbstractDomain] = {}
        for atom in self.root.atoms():
            for place, term in enumerate(atom.terms):
                if not is_variable(term):
                    continue
                domain = atom.relation.domain_of(place)
                previous = domains.get(term)
                if previous is None:
                    domains[term] = domain
                elif previous != domain:
                    raise QueryError(
                        f"variable {term!r} occurs at attributes of different "
                        f"abstract domains ({previous.name!r} and {domain.name!r})"
                    )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_cq(query: ConjunctiveQuery) -> "PositiveQuery":
        """View a conjunctive query as a positive query."""
        node: PQNode
        if len(query.atoms) == 1:
            node = AtomNode(query.atoms[0])
        else:
            node = AndNode(tuple(AtomNode(atom) for atom in query.atoms))
        return PositiveQuery(node, query.free_variables, query.name)

    @staticmethod
    def union_of(queries: Sequence[ConjunctiveQuery], name: str = "Q") -> "PositiveQuery":
        """A union of conjunctive queries (UCQ) as a positive query.

        All disjuncts must have the same free-variable tuple.
        """
        if not queries:
            raise QueryError("a union needs at least one disjunct")
        free = queries[0].free_variables
        for query in queries[1:]:
            if query.free_variables != free:
                raise QueryError("all disjuncts of a union must share free variables")
        children = tuple(PositiveQuery.from_cq(query).root for query in queries)
        root: PQNode = children[0] if len(children) == 1 else OrNode(children)
        return PositiveQuery(root, free, name)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """All atoms of the query, with multiplicity, in tree order."""
        return self.root.atoms()

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, deduplicated, in first-occurrence order."""
        seen: List[Variable] = []
        for atom in self.atoms:
            for variable in atom.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def constants(self) -> Tuple[object, ...]:
        """All constants, deduplicated, in first-occurrence order."""
        seen: List[object] = []
        for atom in self.atoms:
            for constant in atom.constants:
                if constant not in seen:
                    seen.append(constant)
        return tuple(seen)

    def constants_with_domains(self) -> FrozenSet[Tuple[object, AbstractDomain]]:
        """Constants paired with the abstract domains of the places they occupy."""
        pairs: Set[Tuple[object, AbstractDomain]] = set()
        for atom in self.atoms:
            for place, term in enumerate(atom.terms):
                if not is_variable(term):
                    pairs.add((term, atom.relation.domain_of(place)))
        return frozenset(pairs)

    @property
    def is_boolean(self) -> bool:
        """Whether the query has no free variables."""
        return not self.free_variables

    @property
    def arity(self) -> int:
        """Number of free variables."""
        return len(self.free_variables)

    def relation_names(self) -> FrozenSet[str]:
        """Names of the relations mentioned anywhere in the query."""
        return frozenset(atom.relation.name for atom in self.atoms)

    def variable_domains(self) -> Dict[Variable, AbstractDomain]:
        """Map each variable to its (unique) abstract domain."""
        domains: Dict[Variable, AbstractDomain] = {}
        for atom in self.atoms:
            for variable, domain in atom.variable_domains().items():
                domains.setdefault(variable, domain)
        return domains

    def size(self) -> int:
        """Number of atoms in the query."""
        return self.root.size()

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #
    def substitute(self, assignment: Mapping[Variable, Term]) -> "PositiveQuery":
        """Apply a substitution; substituted free variables are dropped."""
        new_root = self.root.substitute(assignment)
        new_free = tuple(
            variable
            for variable in self.free_variables
            if not (variable in assignment and not is_variable(assignment[variable]))
        )
        renamed_free = tuple(
            assignment.get(variable, variable) for variable in new_free
        )
        return PositiveQuery(new_root, tuple(renamed_free), self.name)

    def to_ucq(self, max_disjuncts: int = 4096) -> Tuple[ConjunctiveQuery, ...]:
        """Convert to a union of conjunctive queries (DNF).

        Raises :class:`~repro.exceptions.QueryError` if the DNF would exceed
        ``max_disjuncts`` disjuncts (the conversion is worst-case exponential).
        """
        conjunctions = self.root.dnf()
        if len(conjunctions) > max_disjuncts:
            raise QueryError(
                f"DNF of {self.name!r} has {len(conjunctions)} disjuncts, "
                f"exceeding the limit of {max_disjuncts}"
            )
        disjuncts = []
        for index, atoms in enumerate(conjunctions):
            atom_vars = {v for atom in atoms for v in atom.variables}
            free = tuple(v for v in self.free_variables if v in atom_vars)
            if set(free) != set(self.free_variables):
                # A disjunct that does not mention a free variable would be
                # unsafe; the paper restricts attention to Boolean queries
                # where this cannot happen.  We keep the disjunct and simply
                # project on the variables it does bind.
                pass
            disjuncts.append(
                ConjunctiveQuery(tuple(atoms), free, f"{self.name}_d{index}")
            )
        return tuple(disjuncts)

    def boolean_closure(self) -> "PositiveQuery":
        """The Boolean query obtained by dropping all free variables."""
        return PositiveQuery(self.root, (), self.name)

    def canonical_form(self) -> Tuple[object, ...]:
        """A process-stable structural encoding (see the CQ counterpart)."""
        return (
            "pq",
            self.root.canonical_form(),
            tuple(variable.name for variable in self.free_variables),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = (
            f"{self.name}({', '.join(v.name for v in self.free_variables)})"
            if self.free_variables
            else f"{self.name}()"
        )
        return f"{head} :- {self.root!r}"
