"""The bank scenario of the paper's introduction.

Relations::

    Employee(EmpId, Title, LastName, FirstName, OffId)
    Office(OffId, StreetAddress, State, Phone)
    Approval(State, Offering)
    Manager(EmpId, EmpId)

Web forms (access methods)::

    EmpOffAcc     Employee by EmpId     (returns the employee's office link)
    EmpManAcc     Manager  by EmpId     (returns the employee's managers)
    OfficeInfoAcc Office   by OffId     (returns the full office record)
    StateApprAcc  Approval by State     (returns the approvals for the state)

and the motivating Boolean query: *is there a loan officer located in
Illinois, and is the company authorised to offer 30-year mortgages in
Illinois?*
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.data import Configuration, Instance
from repro.queries import ConjunctiveQuery, parse_cq
from repro.schema import Schema, SchemaBuilder
from repro.sources.service import DataSource, Mediator

__all__ = ["BankScenario", "build_bank_schema", "build_bank_scenario"]


def build_bank_schema() -> Schema:
    """The bank schema with its four form-style access methods."""
    builder = SchemaBuilder()
    builder.domain("EmpId")
    builder.domain("Text")
    builder.domain("OffId")
    builder.domain("State")
    builder.domain("Offering")
    builder.relation(
        "Employee",
        [
            ("empId", "EmpId"),
            ("title", "Text"),
            ("lastName", "Text"),
            ("firstName", "Text"),
            ("offId", "OffId"),
        ],
    )
    builder.relation(
        "Office",
        [
            ("offId", "OffId"),
            ("streetAddress", "Text"),
            ("state", "State"),
            ("phone", "Text"),
        ],
    )
    builder.relation("Approval", [("state", "State"), ("offering", "Offering")])
    builder.relation("Manager", [("empId", "EmpId"), ("managerId", "EmpId")])
    builder.access("EmpOffAcc", "Employee", inputs=["empId"], dependent=True)
    builder.access("EmpManAcc", "Manager", inputs=["empId"], dependent=True)
    builder.access("OfficeInfoAcc", "Office", inputs=["offId"], dependent=True)
    builder.access("StateApprAcc", "Approval", inputs=["state"], dependent=True)
    return builder.build()


@dataclass
class BankScenario:
    """A generated bank instance with its schema, query, and mediator factory."""

    schema: Schema
    hidden_instance: Instance
    query: ConjunctiveQuery
    known_employee_ids: Tuple[str, ...]

    def initial_configuration(self) -> Configuration:
        """The starting knowledge: a few employee identifiers and the query constants."""
        configuration = Configuration.empty(self.schema)
        emp_domain = self.schema.relation("Employee").domain_of(0)
        for emp_id in self.known_employee_ids:
            configuration.add_constant(emp_id, emp_domain)
        for value, domain in self.query.constants_with_domains():
            configuration.add_constant(value, domain)
        return configuration

    def mediator(self, completeness: float = 1.0, seed: int = 0) -> Mediator:
        """A mediator over exact (or partial) simulated sources."""
        sources = [
            DataSource(
                method, self.hidden_instance, completeness=completeness, seed=seed + i
            )
            for i, method in enumerate(self.schema.access_methods)
        ]
        return Mediator(self.schema, sources, self.initial_configuration())


def build_bank_scenario(
    *,
    employees: int = 30,
    offices: int = 8,
    states: int = 5,
    seed: int = 7,
    known_employees: int = 3,
) -> BankScenario:
    """Generate a bank instance where the motivating query is satisfiable.

    The generator always places at least one loan officer in an Illinois
    office and approves 30-year mortgages in Illinois, so the query has a
    witness that a federated engine can eventually discover.
    """
    schema = build_bank_schema()
    rng = random.Random(seed)
    state_names = ["Illinois"] + [f"State{i}" for i in range(1, states)]
    titles = ["loan officer", "teller", "analyst", "branch manager"]
    offerings = ["30yr", "15yr", "auto", "heloc"]

    instance = Instance(schema)
    office_ids = [f"off{i}" for i in range(offices)]
    for index, office_id in enumerate(office_ids):
        state = state_names[index % len(state_names)]
        instance.add(
            "Office", (office_id, f"{index} Main St", state, f"555-010{index}")
        )
    # Guarantee at least one Illinois office.
    instance.add("Office", ("off_il", "1 Lake St", "Illinois", "555-9999"))
    office_ids.append("off_il")

    employee_ids = [f"emp{i}" for i in range(employees)]
    for index, emp_id in enumerate(employee_ids):
        title = titles[rng.randrange(len(titles))]
        office_id = office_ids[rng.randrange(len(office_ids))]
        instance.add(
            "Employee", (emp_id, title, f"Last{index}", f"First{index}", office_id)
        )
    # Guarantee a loan officer in the Illinois office.
    instance.add("Employee", ("emp_il", "loan officer", "Doe", "Jane", "off_il"))
    employee_ids.append("emp_il")

    for emp_id in employee_ids:
        manager = employee_ids[rng.randrange(len(employee_ids))]
        if manager != emp_id:
            instance.add("Manager", (emp_id, manager))
    # A management chain from the first known employee to the Illinois loan
    # officer, so that dependent navigation can reach the witness.
    instance.add("Manager", (employee_ids[0], "emp_il"))

    for state in state_names:
        for offering in offerings:
            if rng.random() < 0.4:
                instance.add("Approval", (state, offering))
    instance.add("Approval", ("Illinois", "30yr"))

    query = parse_cq(
        schema,
        "Employee(e, 'loan officer', ln, fn, o), Office(o, a, 'Illinois', p), "
        "Approval('Illinois', '30yr')",
        name="LoanOfficerIllinois",
    )
    return BankScenario(
        schema=schema,
        hidden_instance=instance,
        query=query,
        known_employee_ids=tuple(employee_ids[:known_employees]),
    )
