"""Simulated deep-Web sources and the mediator that queries them.

The paper's motivating setting is a federated query engine that can only
reach backend data through restricted interfaces (Web forms, services).  This
module simulates that setting:

* a :class:`DataSource` wraps a *hidden* instance together with one access
  method; it answers accesses soundly, either exactly (all matching tuples)
  or partially (a sampled subset), modelling sources with incomplete
  knowledge;
* a :class:`Mediator` owns the current configuration — everything retrieved
  so far — performs well-formed accesses against the sources, and keeps an
  access log, so answering strategies (see :mod:`repro.planner.dynamic`) can
  be compared by the number of accesses they make.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data import (
    AccessResponse,
    Configuration,
    Instance,
    is_well_formed,
    response_from_instance,
)
from repro.exceptions import AccessError, SchemaError
from repro.schema import Access, AccessMethod, Schema

__all__ = ["DataSource", "Mediator"]


class DataSource:
    """A single source: one access method over a hidden instance.

    Parameters
    ----------
    method:
        The access method this source implements.
    hidden_instance:
        The full backend data (never exposed directly).
    completeness:
        Probability that each matching tuple is included in a response;
        ``1.0`` models an exact source, smaller values model sound but
        partial sources.
    seed:
        Seed of the per-source random generator (for reproducible partial
        responses).
    """

    def __init__(
        self,
        method: AccessMethod,
        hidden_instance: Instance,
        *,
        completeness: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= completeness <= 1.0:
            raise AccessError("completeness must be between 0 and 1")
        self._method = method
        self._hidden = hidden_instance
        self._completeness = completeness
        self._random = random.Random(seed)
        self.calls = 0

    @property
    def method(self) -> AccessMethod:
        """The access method implemented by this source."""
        return self._method

    def respond(self, access: Access) -> AccessResponse:
        """Answer an access (which must use this source's method)."""
        if access.method.name != self._method.name:
            raise AccessError(
                f"source for {self._method.name!r} received an access via "
                f"{access.method.name!r}"
            )
        self.calls += 1
        matching = sorted(
            access.select(self._hidden.tuples(access.relation)), key=repr
        )
        if self._completeness >= 1.0:
            chosen: Sequence[Tuple[object, ...]] = matching
        else:
            chosen = [
                row for row in matching if self._random.random() <= self._completeness
            ]
        return AccessResponse(access, tuple(chosen))


class Mediator:
    """A federated query engine over a set of sources.

    The mediator's state is its configuration; every successful access grows
    it.  Accesses that are not well-formed (a dependent binding value not yet
    known) are rejected, mirroring the paper's semantics.
    """

    def __init__(
        self,
        schema: Schema,
        sources: Iterable[DataSource],
        initial_configuration: Optional[Configuration] = None,
    ) -> None:
        self._schema = schema
        self._sources: Dict[str, DataSource] = {}
        for source in sources:
            if source.method.name in self._sources:
                raise SchemaError(
                    f"duplicate source for access method {source.method.name!r}"
                )
            self._sources[source.method.name] = source
        self._configuration = (
            initial_configuration.copy()
            if initial_configuration is not None
            else Configuration.empty(schema)
        )
        self._log: List[Tuple[Access, int]] = []

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema shared by the sources."""
        return self._schema

    @property
    def configuration(self) -> Configuration:
        """The facts retrieved so far (a copy; mutate via :meth:`perform`)."""
        return self._configuration.copy()

    @property
    def access_count(self) -> int:
        """How many accesses have been performed."""
        return len(self._log)

    @property
    def access_log(self) -> Tuple[Tuple[Access, int], ...]:
        """The sequence of performed accesses with the number of tuples returned."""
        return tuple(self._log)

    def source_for(self, method_name: str) -> DataSource:
        """The source implementing ``method_name``."""
        try:
            return self._sources[method_name]
        except KeyError:
            raise SchemaError(f"no source for access method {method_name!r}") from None

    # ------------------------------------------------------------------ #
    # Access execution
    # ------------------------------------------------------------------ #
    def can_perform(self, access: Access) -> bool:
        """Whether the access is well-formed at the current configuration."""
        return is_well_formed(access, self._configuration)

    def perform(self, access: Access) -> AccessResponse:
        """Perform a well-formed access and merge its response."""
        if not self.can_perform(access):
            raise AccessError(
                f"access {access!r} is not well-formed at the current configuration"
            )
        response = self.source_for(access.method.name).respond(access)
        self._configuration = self._configuration.extended_with(response.as_facts())
        self._log.append((access, len(response)))
        return response

    def seed_constants(self, constants: Iterable[Tuple[object, object]]) -> None:
        """Make constants (e.g. query constants) available for dependent bindings."""
        for value, domain in constants:
            self._configuration.add_constant(value, domain)
