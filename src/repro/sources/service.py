"""Simulated deep-Web sources and the mediator that queries them.

The paper's motivating setting is a federated query engine that can only
reach backend data through restricted interfaces (Web forms, services).  This
module simulates that setting:

* a :class:`DataSource` wraps a *hidden* instance together with one access
  method; it answers accesses soundly, either exactly (all matching tuples)
  or partially (a sampled subset), modelling sources with incomplete
  knowledge;
* a :class:`Mediator` owns the current configuration — everything retrieved
  so far — performs well-formed accesses against the sources, and keeps an
  access log, so answering strategies (see :mod:`repro.planner.dynamic`) can
  be compared by the number of accesses they make.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports us)
    from repro.runtime.metrics import RuntimeMetrics

from repro.data import (
    AccessResponse,
    Configuration,
    Instance,
    is_well_formed,
    response_from_instance,
)
from repro.exceptions import AccessError, SchemaError
from repro.schema import Access, AccessMethod, Schema

__all__ = ["DataSource", "Mediator"]


class DataSource:
    """A single source: one access method over a hidden instance.

    Parameters
    ----------
    method:
        The access method this source implements.
    hidden_instance:
        The full backend data (never exposed directly).
    completeness:
        Probability that each matching tuple is included in a response;
        ``1.0`` models an exact source, smaller values model sound but
        partial sources.
    seed:
        Seed of the per-source random generator (for reproducible partial
        responses).
    """

    def __init__(
        self,
        method: AccessMethod,
        hidden_instance: Instance,
        *,
        completeness: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= completeness <= 1.0:
            raise AccessError("completeness must be between 0 and 1")
        self._method = method
        self._hidden = hidden_instance
        self._completeness = completeness
        self._random = random.Random(seed)
        self.calls = 0

    @property
    def method(self) -> AccessMethod:
        """The access method implemented by this source."""
        return self._method

    def respond(self, access: Access) -> AccessResponse:
        """Answer an access (which must use this source's method)."""
        if access.method.name != self._method.name:
            raise AccessError(
                f"source for {self._method.name!r} received an access via "
                f"{access.method.name!r}"
            )
        self.calls += 1
        # Serve the access from the hidden instance's (place, constant)
        # indexes: only tuples agreeing with the binding are enumerated.
        matching = sorted(
            self._hidden.tuples_matching(access.relation, access.binding_by_place),
            key=repr,
        )
        if self._completeness >= 1.0:
            chosen: Sequence[Tuple[object, ...]] = matching
        else:
            chosen = [
                row for row in matching if self._random.random() <= self._completeness
            ]
        # The tuples come from an index lookup keyed on the binding, over an
        # instance validated at construction: skip per-tuple re-validation.
        return AccessResponse.trusted(access, tuple(chosen))


class Mediator:
    """A federated query engine over a set of sources.

    The mediator's state is its configuration; every successful access grows
    it.  Accesses that are not well-formed (a dependent binding value not yet
    known) are rejected, mirroring the paper's semantics.
    """

    def __init__(
        self,
        schema: Schema,
        sources: Iterable[DataSource],
        initial_configuration: Optional[Configuration] = None,
        *,
        metrics: Optional["RuntimeMetrics"] = None,
    ) -> None:
        self._schema = schema
        self._sources: Dict[str, DataSource] = {}
        for source in sources:
            if source.method.name in self._sources:
                raise SchemaError(
                    f"duplicate source for access method {source.method.name!r}"
                )
            self._sources[source.method.name] = source
        self._configuration = (
            initial_configuration.copy()
            if initial_configuration is not None
            else Configuration.empty(schema)
        )
        self._log: List[Tuple[Access, int]] = []
        self._metrics = metrics

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema shared by the sources."""
        return self._schema

    @property
    def configuration(self) -> Configuration:
        """The facts retrieved so far (a copy; mutate via :meth:`perform`)."""
        return self._configuration.copy()

    @property
    def configuration_view(self) -> Configuration:
        """A *live, read-only* view of the current configuration.

        Unlike :attr:`configuration` this does not copy; the returned object
        changes as accesses are performed.  Callers must not mutate it — the
        answering strategies use it to avoid per-candidate deep copies.
        """
        return self._configuration

    @property
    def fingerprint(self) -> Tuple[int, ...]:
        """The content fingerprint of the current configuration."""
        return self._configuration.fingerprint()

    @property
    def access_count(self) -> int:
        """How many accesses have been performed."""
        return len(self._log)

    @property
    def access_log(self) -> Tuple[Tuple[Access, int], ...]:
        """The sequence of performed accesses with the number of tuples returned."""
        return tuple(self._log)

    def source_for(self, method_name: str) -> DataSource:
        """The source implementing ``method_name``."""
        try:
            return self._sources[method_name]
        except KeyError:
            raise SchemaError(f"no source for access method {method_name!r}") from None

    # ------------------------------------------------------------------ #
    # Access execution
    # ------------------------------------------------------------------ #
    def can_perform(self, access: Access) -> bool:
        """Whether the access is well-formed at the current configuration."""
        return is_well_formed(access, self._configuration)

    def perform(self, access: Access) -> AccessResponse:
        """Perform a well-formed access and merge its response.

        The response facts are merged into the configuration *in place* (the
        indexed instance absorbs them incrementally); external snapshots taken
        via :attr:`configuration` are unaffected.
        """
        if not self.can_perform(access):
            raise AccessError(
                f"access {access!r} is not well-formed at the current configuration"
            )
        response = self.source_for(access.method.name).respond(access)
        relation_name = access.relation.name
        configuration = self._configuration
        # All-or-nothing merge: if a response tuple fails validation part-way
        # (possible with duck-typed sources), roll the merged prefix back so
        # the configuration never keeps facts from a failed access.
        added: List[Tuple[object, ...]] = []
        try:
            for values in response.facts:
                if configuration.add(relation_name, values):
                    added.append(values)
        except Exception:
            for values in added:
                configuration.remove(relation_name, values)
            raise
        new_facts = len(added)
        self._log.append((access, len(response)))
        if self._metrics is not None:
            self._metrics.incr("mediator.accesses")
            self._metrics.incr("mediator.facts_returned", len(response))
            self._metrics.incr("mediator.facts_new", new_facts)
        return response

    def seed_constants(self, constants: Iterable[Tuple[object, object]]) -> None:
        """Make constants (e.g. query constants) available for dependent bindings."""
        for value, domain in constants:
            self._configuration.add_constant(value, domain)
