"""Simulated deep-Web sources and the mediator that queries them.

The paper's motivating setting is a federated query engine that can only
reach backend data through restricted interfaces (Web forms, services).  This
module simulates that setting:

* a :class:`DataSource` wraps a *hidden* instance together with one access
  method; it answers accesses soundly, either exactly (all matching tuples)
  or partially (a sampled subset), modelling sources with incomplete
  knowledge, and can simulate *access latency* — the round-trip delay that
  dominates real deep-Web wall-clock;
* a :class:`Mediator` owns the current configuration — everything retrieved
  so far — performs well-formed accesses against the sources, and keeps an
  access log, so answering strategies (see :mod:`repro.planner.dynamic`) can
  be compared by the number of accesses they make.

Concurrency model (see also the README section): the mediator can overlap
independent accesses with :meth:`Mediator.perform_many`.  Worker threads
(``concurrent.futures.ThreadPoolExecutor``) call only
:meth:`DataSource.respond` — a pure read of the immutable hidden instance
plus the simulated latency sleep.  Threads are the right tool here (rather
than asyncio): source latency is I/O-shaped waiting, which the GIL releases,
and the entire planner/oracle stack stays synchronous — an async path would
force ``await`` contagion through every relevance procedure for no extra
overlap.  All configuration mutation, access logging, and caller callbacks
(``stop``, ``should_perform``) stay on the *dispatching* thread, serialised
by the mediator's single writer lock, so relevance oracles and certainty
checks never observe a configuration mid-merge.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports us)
    from repro.runtime.metrics import RuntimeMetrics

from repro.data import (
    AccessResponse,
    Configuration,
    Instance,
    is_well_formed,
    response_from_instance,
)
from repro.exceptions import AccessError, SchemaError
from repro.schema import Access, AccessMethod, Schema

__all__ = ["DataSource", "Mediator"]


def _current_tracer():
    """The thread's ambient tracer (lazy import: the runtime package imports us).

    Importing :mod:`repro.runtime.tracing` at module level would execute the
    ``repro.runtime`` package ``__init__`` mid-import of this module, and that
    package imports :class:`Mediator` back — the same cycle that keeps the
    ``RuntimeMetrics`` import under ``TYPE_CHECKING`` above.  After the first
    call this is a cached-function invocation plus one ``sys.modules`` hit.
    """
    global _current_tracer_impl
    if _current_tracer_impl is None:
        from repro.runtime.tracing import current_tracer

        _current_tracer_impl = current_tracer
    return _current_tracer_impl()


_current_tracer_impl = None


class DataSource:
    """A single source: one access method over a hidden instance.

    Parameters
    ----------
    method:
        The access method this source implements.
    hidden_instance:
        The full backend data (never exposed directly).
    completeness:
        Probability that each matching tuple is included in a response;
        ``1.0`` models an exact source, smaller values model sound but
        partial sources.  Inclusion is decided by a stable per-tuple hash of
        ``(seed, access, tuple)``, so a given access always returns the same
        subset — independent of call order, process hash seed, or how many
        worker threads are querying the source.
    seed:
        Seed of the per-source randomness (partial-response sampling and
        latency jitter).
    latency_s:
        Fixed simulated round-trip delay per access, in seconds.
    latency_jitter_s:
        Upper bound of an additional uniform per-call delay drawn from the
        source's seeded random generator.

    ``respond`` may be called from many threads at once: the hidden instance
    is only read, the call counter and the jitter draw are guarded by a
    per-source lock, and the latency sleep happens outside that lock so
    concurrent accesses genuinely overlap.
    """

    def __init__(
        self,
        method: AccessMethod,
        hidden_instance: Instance,
        *,
        completeness: float = 1.0,
        seed: int = 0,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
    ) -> None:
        if not 0.0 <= completeness <= 1.0:
            raise AccessError("completeness must be between 0 and 1")
        if latency_s < 0.0 or latency_jitter_s < 0.0:
            raise AccessError("latency and jitter must be non-negative")
        self._method = method
        self._hidden = hidden_instance
        self._completeness = completeness
        self._seed = seed
        self._random = random.Random(seed)
        self._latency_s = latency_s
        self._latency_jitter_s = latency_jitter_s
        self._lock = threading.Lock()
        self.calls = 0

    @property
    def method(self) -> AccessMethod:
        """The access method implemented by this source."""
        return self._method

    @property
    def latency_s(self) -> float:
        """The fixed simulated per-access delay."""
        return self._latency_s

    def _keeps(self, access: Access, row: Tuple[object, ...]) -> bool:
        """Stable inclusion decision for one matching tuple of a partial source."""
        if self._completeness >= 1.0:
            return True
        token = repr((self._seed, self._method.name, access.binding, row)).encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / 2.0**64
        return draw <= self._completeness

    def respond(self, access: Access) -> AccessResponse:
        """Answer an access (which must use this source's method)."""
        if access.method.name != self._method.name:
            raise AccessError(
                f"source for {self._method.name!r} received an access via "
                f"{access.method.name!r}"
            )
        with self._lock:
            self.calls += 1
            delay = self._latency_s
            if self._latency_jitter_s > 0.0:
                delay += self._random.random() * self._latency_jitter_s
        if delay > 0.0:
            # Outside the lock: concurrent accesses to one source overlap.
            time.sleep(delay)
        # Serve the access from the hidden instance's (place, constant)
        # indexes: only tuples agreeing with the binding are enumerated.
        matching = sorted(
            self._hidden.tuples_matching(access.relation, access.binding_by_place),
            key=repr,
        )
        if self._completeness >= 1.0:
            chosen: Sequence[Tuple[object, ...]] = matching
        else:
            chosen = [row for row in matching if self._keeps(access, row)]
        # The tuples come from an index lookup keyed on the binding, over an
        # instance validated at construction: skip per-tuple re-validation.
        return AccessResponse.trusted(access, tuple(chosen))


class Mediator:
    """A federated query engine over a set of sources.

    The mediator's state is its configuration; every successful access grows
    it.  Accesses that are not well-formed (a dependent binding value not yet
    known) are rejected, mirroring the paper's semantics.

    Ordering guarantees under :meth:`perform_many`: responses are merged and
    logged one at a time under the writer lock, in completion order — the
    *set* of performed accesses and the final configuration are deterministic
    for exact sources, while the log *order* within a concurrent batch is
    not.  Each merge keeps the all-or-nothing semantics of :meth:`perform`.
    """

    def __init__(
        self,
        schema: Schema,
        sources: Iterable[DataSource],
        initial_configuration: Optional[Configuration] = None,
        *,
        metrics: Optional["RuntimeMetrics"] = None,
    ) -> None:
        self._schema = schema
        self._sources: Dict[str, DataSource] = {}
        for source in sources:
            if source.method.name in self._sources:
                raise SchemaError(
                    f"duplicate source for access method {source.method.name!r}"
                )
            self._sources[source.method.name] = source
        self._configuration = (
            initial_configuration.copy()
            if initial_configuration is not None
            else Configuration.empty(schema)
        )
        self._log: List[Tuple[Access, int]] = []
        self._metrics = metrics
        self._merge_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema shared by the sources."""
        return self._schema

    @property
    def configuration(self) -> Configuration:
        """The facts retrieved so far (a copy; mutate via :meth:`perform`)."""
        return self._configuration.copy()

    @property
    def configuration_view(self) -> Configuration:
        """A *live, read-only* view of the current configuration.

        Unlike :attr:`configuration` this does not copy; the returned object
        changes as accesses are performed.  Callers must not mutate it — the
        answering strategies use it to avoid per-candidate deep copies.
        During a :meth:`perform_many` batch the view only changes on the
        dispatching thread (merges happen between, not during, caller
        callbacks), so strategies reading it from that thread never observe a
        partial merge.
        """
        return self._configuration

    @property
    def fingerprint(self) -> Tuple[int, ...]:
        """The content fingerprint of the current configuration."""
        return self._configuration.fingerprint()

    @property
    def access_count(self) -> int:
        """How many accesses have been performed."""
        return len(self._log)

    @property
    def access_log(self) -> Tuple[Tuple[Access, int], ...]:
        """The sequence of performed accesses with the number of tuples returned."""
        return tuple(self._log)

    def source_for(self, method_name: str) -> DataSource:
        """The source implementing ``method_name``."""
        try:
            return self._sources[method_name]
        except KeyError:
            raise SchemaError(f"no source for access method {method_name!r}") from None

    # ------------------------------------------------------------------ #
    # Access execution
    # ------------------------------------------------------------------ #
    def can_perform(self, access: Access) -> bool:
        """Whether the access is well-formed at the current configuration."""
        return is_well_formed(access, self._configuration)

    def _merge_response(self, access: Access, response: AccessResponse) -> int:
        """Merge one response under the writer lock; return the new-fact count.

        All-or-nothing: if a response tuple fails validation part-way
        (possible with duck-typed sources), the merged prefix is rolled back
        so the configuration never keeps facts from a failed access.
        """
        relation_name = access.relation.name
        with self._merge_lock:
            configuration = self._configuration
            added: List[Tuple[object, ...]] = []
            try:
                for values in response.facts:
                    if configuration.add(relation_name, values):
                        added.append(values)
            except Exception:
                for values in added:
                    configuration.remove(relation_name, values)
                raise
            new_facts = len(added)
            self._log.append((access, len(response)))
        if self._metrics is not None:
            self._metrics.incr("mediator.accesses")
            self._metrics.incr("mediator.facts_returned", len(response))
            self._metrics.incr("mediator.facts_new", new_facts)
        return new_facts

    def _respond_timed(self, access: Access, tracer, parent, tags=None):
        """Answer ``access``, measuring the round-trip; safe on worker threads.

        Returns ``(response, duration, span)`` where ``span`` is the recorded
        ``source-call`` span (``None`` when tracing is off) — the caller
        annotates merge-time facts onto it after the merge.  The per-access
        latency lands in the ``source.latency`` histogram whether or not
        tracing is on: percentiles are always-on telemetry, spans are opt-in.
        """
        source = self.source_for(access.method.name)
        start = time.time()
        t0 = time.perf_counter()
        response = source.respond(access)
        duration = time.perf_counter() - t0
        span = None
        if tracer.enabled:
            span_tags = {"method": access.method.name, "facts": len(response)}
            if tags:
                span_tags.update(tags)
            span = tracer.record_span(
                "source-call",
                start=start,
                duration=duration,
                parent=parent,
                tags=span_tags,
            )
        if self._metrics is not None:
            self._metrics.observe("source.latency", duration)
        return response, duration, span

    def _perform_counted_traced(
        self, access: Access, tracer, parent, tags=None
    ) -> Tuple[AccessResponse, int, float]:
        """The :meth:`perform_counted` body with explicit trace plumbing."""
        if not self.can_perform(access):
            raise AccessError(
                f"access {access!r} is not well-formed at the current configuration"
            )
        response, duration, span = self._respond_timed(access, tracer, parent, tags)
        new_facts = self._merge_response(access, response)
        if span is not None:
            span.annotate(new_facts=new_facts)
        return response, new_facts, duration

    def perform_counted(self, access: Access) -> Tuple[AccessResponse, int]:
        """Perform a well-formed access; return ``(response, new facts merged)``.

        ``new facts merged`` counts only tuples the configuration did not
        already contain — the progress measure the answering strategies use
        (a response full of already-known tuples is not progress).
        """
        tracer = _current_tracer()
        parent = tracer.context() if tracer.enabled else None
        response, new_facts, _duration = self._perform_counted_traced(
            access, tracer, parent
        )
        return response, new_facts

    def perform(self, access: Access) -> AccessResponse:
        """Perform a well-formed access and merge its response.

        The response facts are merged into the configuration *in place* (the
        indexed instance absorbs them incrementally); external snapshots taken
        via :attr:`configuration` are unaffected.
        """
        return self.perform_counted(access)[0]

    def perform_many(
        self,
        accesses: Iterable[Access],
        *,
        max_concurrency: int = 1,
        stop: Optional[Callable[[], bool]] = None,
        should_perform: Optional[Callable[[Access], bool]] = None,
        on_performed: Optional[Callable[[Access, AccessResponse, int], None]] = None,
        on_timing: Optional[Callable[[Access, float], None]] = None,
        tags_for: Optional[Callable[[Access], Optional[Dict[str, object]]]] = None,
    ) -> List[Tuple[Access, AccessResponse, int]]:
        """Perform a batch of accesses, overlapping their source latency.

        Up to ``max_concurrency`` accesses are in flight at once; worker
        threads only call :meth:`DataSource.respond`, while this (the
        dispatching) thread checks well-formedness, consults
        ``should_perform`` immediately before each dispatch, merges completed
        responses one at a time under the writer lock, and evaluates ``stop``
        between completions.  Once ``stop`` returns true no further access is
        dispatched; accesses already in flight were genuinely sent to their
        sources, so their responses are still merged and logged (the
        performed set equals the dispatched set).

        ``on_performed`` is invoked on this thread right after each merge —
        callers tracking which accesses were performed (the executor's
        deduplication set) see every merge even if a later access of the
        batch fails and the call raises.  ``on_timing`` likewise runs on this
        thread after each merge with the access's measured source round-trip,
        so callers can feed per-access latency histograms.  ``tags_for`` is
        evaluated at dispatch time (on this thread) and its tags land on the
        access's ``source-call`` trace span — the hook the executor uses to
        attach why-was-this-access-performed annotations.

        Tracing note: the tracer active on *this* thread at entry, and its
        innermost open span, are captured once — worker threads record their
        ``source-call`` spans against that explicit parent, since
        thread-locals do not follow work into the pool.

        Returns ``(access, response, new facts merged)`` triples in merge
        (completion) order.  With ``max_concurrency <= 1`` the batch runs
        strictly sequentially on this thread with identical semantics.
        """
        pending = deque(accesses)
        performed: List[Tuple[Access, AccessResponse, int]] = []
        tracer = _current_tracer()
        batch_parent = tracer.context() if tracer.enabled else None

        def dispatch_tags(access: Access) -> Optional[Dict[str, object]]:
            if tags_for is None or not tracer.enabled:
                return None
            return tags_for(access)

        def record(access: Access, response: AccessResponse, new_facts: int) -> None:
            performed.append((access, response, new_facts))
            if on_performed is not None:
                on_performed(access, response, new_facts)

        if max_concurrency <= 1:
            while pending:
                if stop is not None and stop():
                    break
                access = pending.popleft()
                if should_perform is not None and not should_perform(access):
                    continue
                response, new_facts, duration = self._perform_counted_traced(
                    access, tracer, batch_parent, dispatch_tags(access)
                )
                if on_timing is not None:
                    on_timing(access, duration)
                record(access, response, new_facts)
            return performed

        errors: List[BaseException] = []
        stopped = False
        with ThreadPoolExecutor(max_workers=max_concurrency) as pool:
            in_flight: Dict[object, Access] = {}

            def dispatch_more() -> None:
                nonlocal stopped
                while pending and len(in_flight) < max_concurrency and not stopped:
                    if stop is not None and stop():
                        stopped = True
                        break
                    access = pending.popleft()
                    if should_perform is not None and not should_perform(access):
                        continue
                    if not self.can_perform(access):
                        errors.append(
                            AccessError(
                                f"access {access!r} is not well-formed at the "
                                f"current configuration"
                            )
                        )
                        stopped = True
                        break
                    in_flight[
                        pool.submit(
                            self._respond_timed,
                            access,
                            tracer,
                            batch_parent,
                            dispatch_tags(access),
                        )
                    ] = access

            dispatch_more()
            while in_flight:
                done, _ = futures_wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    access = in_flight.pop(future)
                    try:
                        response, duration, span = future.result()
                    except BaseException as exc:  # drain remaining in-flight work
                        errors.append(exc)
                        stopped = True
                        continue
                    try:
                        new_facts = self._merge_response(access, response)
                    except BaseException as exc:
                        errors.append(exc)
                        stopped = True
                        continue
                    if span is not None:
                        span.annotate(new_facts=new_facts)
                    if on_timing is not None:
                        on_timing(access, duration)
                    record(access, response, new_facts)
                if stop is not None and not stopped and stop():
                    stopped = True
                dispatch_more()
        if errors:
            raise errors[0]
        return performed

    def seed_constants(self, constants: Iterable[Tuple[object, object]]) -> None:
        """Make constants (e.g. query constants) available for dependent bindings."""
        for value, domain in constants:
            self._configuration.add_constant(value, domain)

    def serve(self, **server_kwargs):
        """A :class:`~repro.runtime.server.QueryServer` over this mediator.

        Convenience entry point for the multi-query runtime::

            with mediator.serve(search_workers=4, cache_path="witness.jsonl") as server:
                result = server.answer([q1, q2, q3])

        All keyword arguments are forwarded to the server's constructor.
        The server shares this mediator's configuration: every access any
        query triggers is visible to later ``answer`` calls (and to direct
        :meth:`perform` callers).
        """
        from repro.runtime.server import QueryServer

        return QueryServer(self, **server_kwargs)
