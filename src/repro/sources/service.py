"""Simulated deep-Web sources and the mediator that queries them.

The paper's motivating setting is a federated query engine that can only
reach backend data through restricted interfaces (Web forms, services).  This
module simulates that setting:

* a :class:`DataSource` wraps a *hidden* instance together with one access
  method; it answers accesses soundly, either exactly (all matching tuples)
  or partially (a sampled subset), modelling sources with incomplete
  knowledge, and can simulate *access latency* — the round-trip delay that
  dominates real deep-Web wall-clock;
* a :class:`Mediator` owns the current configuration — everything retrieved
  so far — performs well-formed accesses against the sources, and keeps an
  access log, so answering strategies (see :mod:`repro.planner.dynamic`) can
  be compared by the number of accesses they make.

Concurrency model (see also the README section): the mediator can overlap
independent accesses with :meth:`Mediator.perform_many`.  Worker threads
(``concurrent.futures.ThreadPoolExecutor``) call only
:meth:`DataSource.respond` — a pure read of the immutable hidden instance
plus the simulated latency sleep.  Threads are the right tool here (rather
than asyncio): source latency is I/O-shaped waiting, which the GIL releases,
and the entire planner/oracle stack stays synchronous — an async path would
force ``await`` contagion through every relevance procedure for no extra
overlap.  All configuration mutation, access logging, and caller callbacks
(``stop``, ``should_perform``) stay on the *dispatching* thread, serialised
by the mediator's single writer lock, so relevance oracles and certainty
checks never observe a configuration mid-merge.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports us)
    from repro.runtime.metrics import RuntimeMetrics
    from repro.runtime.retry import BreakerBoard, Deadline, RetryPolicy

from repro.data import (
    AccessResponse,
    Configuration,
    Instance,
    is_well_formed,
    response_from_instance,
)
from repro.exceptions import (
    AccessError,
    CircuitOpenError,
    DeadlineExceeded,
    MalformedResponseError,
    SchemaError,
    TransientAccessError,
)
from repro.schema import Access, AccessMethod, Schema

__all__ = ["DataSource", "FailurePolicy", "Mediator"]


def _current_tracer():
    """The thread's ambient tracer (lazy import: the runtime package imports us).

    Importing :mod:`repro.runtime.tracing` at module level would execute the
    ``repro.runtime`` package ``__init__`` mid-import of this module, and that
    package imports :class:`Mediator` back — the same cycle that keeps the
    ``RuntimeMetrics`` import under ``TYPE_CHECKING`` above.  After the first
    call this is a cached-function invocation plus one ``sys.modules`` hit.
    """
    global _current_tracer_impl
    if _current_tracer_impl is None:
        from repro.runtime.tracing import current_tracer

        _current_tracer_impl = current_tracer
    return _current_tracer_impl()


_current_tracer_impl = None


@dataclass(frozen=True)
class FailurePolicy:
    """Seeded, deterministic fault injection for one :class:`DataSource`.

    Mirrors the ``latency_s``/``latency_jitter_s`` design: every decision is
    a stable ``blake2b`` draw keyed by ``(seed, failure kind, method,
    binding, attempt number)``, so a chaos run is reproducible per
    ``(seed, access)`` — the Nth attempt of a given access fails (or not)
    identically across runs, threads, and processes.

    Parameters
    ----------
    transient_rate:
        Probability that an attempt raises
        :class:`~repro.exceptions.TransientAccessError` (retryable) before
        the simulated round trip.
    hard_fail_after:
        After this many total calls the source raises a plain (fatal)
        :class:`~repro.exceptions.AccessError` forever — a permanent outage.
        The trip point counts *calls to the source*, so under a concurrent
        batch it depends on interleaving; chaos tests that assert exact
        schedules run sequentially.
    hang_rate / hang_s:
        Probability that an attempt hangs for an extra ``hang_s`` seconds on
        top of the configured latency — the "latency spike beyond deadline"
        mode deadline tests use.
    malformed_rate:
        Probability that the response arrives garbled:
        :class:`~repro.exceptions.MalformedResponseError` (retryable) is
        raised *after* the simulated round trip.
    truncate_rate:
        Probability that a successful response is truncated to half its
        rows.  Truncation is sound (a subset of the true answer), so it
        degrades completeness without raising.
    seed:
        Seed of all the draws above; vary it per source.
    """

    transient_rate: float = 0.0
    hard_fail_after: Optional[int] = None
    hang_rate: float = 0.0
    hang_s: float = 0.0
    malformed_rate: float = 0.0
    truncate_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "hang_rate", "malformed_rate", "truncate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise AccessError(f"{name} must be between 0 and 1")
        if self.hang_s < 0.0:
            raise AccessError("hang_s must be non-negative")
        if self.hard_fail_after is not None and self.hard_fail_after < 0:
            raise AccessError("hard_fail_after must be non-negative")

    def _draw(self, kind: str, method: str, binding: Tuple, attempt: int) -> float:
        """Stable uniform draw in ``[0, 1)`` for one (kind, access, attempt)."""
        token = repr((self.seed, kind, method, binding, attempt)).encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64


class DataSource:
    """A single source: one access method over a hidden instance.

    Parameters
    ----------
    method:
        The access method this source implements.
    hidden_instance:
        The full backend data (never exposed directly).
    completeness:
        Probability that each matching tuple is included in a response;
        ``1.0`` models an exact source, smaller values model sound but
        partial sources.  Inclusion is decided by a stable per-tuple hash of
        ``(seed, access, tuple)``, so a given access always returns the same
        subset — independent of call order, process hash seed, or how many
        worker threads are querying the source.
    seed:
        Seed of the per-source randomness (partial-response sampling and
        latency jitter).
    latency_s:
        Fixed simulated round-trip delay per access, in seconds.
    latency_jitter_s:
        Upper bound of an additional uniform per-call delay drawn from the
        source's seeded random generator.
    failure_policy:
        Optional :class:`FailurePolicy` injecting seeded, deterministic
        faults (transient errors, permanent outage, hangs, malformed or
        truncated responses).  ``None`` (the default) is the fault-free
        source with zero added bookkeeping on the respond path.

    ``respond`` may be called from many threads at once: the hidden instance
    is only read, the call counter, the jitter draw, and the per-access
    attempt counter are guarded by a per-source lock, and the latency sleep
    happens outside that lock so concurrent accesses genuinely overlap.
    """

    def __init__(
        self,
        method: AccessMethod,
        hidden_instance: Instance,
        *,
        completeness: float = 1.0,
        seed: int = 0,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
        failure_policy: Optional[FailurePolicy] = None,
    ) -> None:
        if not 0.0 <= completeness <= 1.0:
            raise AccessError("completeness must be between 0 and 1")
        if latency_s < 0.0 or latency_jitter_s < 0.0:
            raise AccessError("latency and jitter must be non-negative")
        self._method = method
        self._hidden = hidden_instance
        self._completeness = completeness
        self._seed = seed
        self._random = random.Random(seed)
        self._latency_s = latency_s
        self._latency_jitter_s = latency_jitter_s
        self._failure_policy = failure_policy
        self._attempt_counts: Dict[Tuple, int] = {}
        self._lock = threading.Lock()
        self.calls = 0

    @property
    def method(self) -> AccessMethod:
        """The access method implemented by this source."""
        return self._method

    @property
    def latency_s(self) -> float:
        """The fixed simulated per-access delay."""
        return self._latency_s

    @property
    def failure_policy(self) -> Optional[FailurePolicy]:
        """The seeded fault-injection policy, if any."""
        return self._failure_policy

    def _keeps(self, access: Access, row: Tuple[object, ...]) -> bool:
        """Stable inclusion decision for one matching tuple of a partial source."""
        if self._completeness >= 1.0:
            return True
        token = repr((self._seed, self._method.name, access.binding, row)).encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / 2.0**64
        return draw <= self._completeness

    def respond(self, access: Access) -> AccessResponse:
        """Answer an access (which must use this source's method)."""
        if access.method.name != self._method.name:
            raise AccessError(
                f"source for {self._method.name!r} received an access via "
                f"{access.method.name!r}"
            )
        policy = self._failure_policy
        attempt = 0
        with self._lock:
            self.calls += 1
            total_calls = self.calls
            delay = self._latency_s
            if self._latency_jitter_s > 0.0:
                delay += self._random.random() * self._latency_jitter_s
            if policy is not None:
                attempt = self._attempt_counts.get(access.binding, 0) + 1
                self._attempt_counts[access.binding] = attempt
        method = self._method.name
        if policy is not None:
            if policy.hard_fail_after is not None and total_calls > policy.hard_fail_after:
                raise AccessError(
                    f"source for {method!r} is permanently down "
                    f"(hard failure after {policy.hard_fail_after} calls)"
                )
            if policy.transient_rate > 0.0 and (
                policy._draw("transient", method, access.binding, attempt)
                < policy.transient_rate
            ):
                # Fails before the round trip, like a refused connection.
                raise TransientAccessError(
                    f"transient failure from source {method!r} "
                    f"(access {access.binding!r}, attempt {attempt})"
                )
            if policy.hang_rate > 0.0 and (
                policy._draw("hang", method, access.binding, attempt) < policy.hang_rate
            ):
                delay += policy.hang_s
        if delay > 0.0:
            # Outside the lock: concurrent accesses to one source overlap.
            time.sleep(delay)
        # Serve the access from the hidden instance's (place, constant)
        # indexes: only tuples agreeing with the binding are enumerated.
        matching = sorted(
            self._hidden.tuples_matching(access.relation, access.binding_by_place),
            key=repr,
        )
        if self._completeness >= 1.0:
            chosen: Sequence[Tuple[object, ...]] = matching
        else:
            chosen = [row for row in matching if self._keeps(access, row)]
        if policy is not None:
            if policy.malformed_rate > 0.0 and (
                policy._draw("malformed", method, access.binding, attempt)
                < policy.malformed_rate
            ):
                # Fails after the round trip, like a garbled payload.
                raise MalformedResponseError(
                    f"malformed response from source {method!r} "
                    f"(access {access.binding!r}, attempt {attempt})"
                )
            if policy.truncate_rate > 0.0 and chosen and (
                policy._draw("truncate", method, access.binding, attempt)
                < policy.truncate_rate
            ):
                # Sound degradation: a strict subset of the true answer.
                chosen = list(chosen)[: len(chosen) // 2]
        # The tuples come from an index lookup keyed on the binding, over an
        # instance validated at construction: skip per-tuple re-validation.
        return AccessResponse.trusted(access, tuple(chosen))


class Mediator:
    """A federated query engine over a set of sources.

    The mediator's state is its configuration; every successful access grows
    it.  Accesses that are not well-formed (a dependent binding value not yet
    known) are rejected, mirroring the paper's semantics.

    Ordering guarantees under :meth:`perform_many`: responses are merged and
    logged one at a time under the writer lock, in completion order — the
    *set* of performed accesses and the final configuration are deterministic
    for exact sources, while the log *order* within a concurrent batch is
    not.  Each merge keeps the all-or-nothing semantics of :meth:`perform`.
    """

    def __init__(
        self,
        schema: Schema,
        sources: Iterable[DataSource],
        initial_configuration: Optional[Configuration] = None,
        *,
        metrics: Optional["RuntimeMetrics"] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        breakers: Optional["BreakerBoard"] = None,
    ) -> None:
        self._schema = schema
        self._sources: Dict[str, DataSource] = {}
        for source in sources:
            if source.method.name in self._sources:
                raise SchemaError(
                    f"duplicate source for access method {source.method.name!r}"
                )
            self._sources[source.method.name] = source
        self._configuration = (
            initial_configuration.copy()
            if initial_configuration is not None
            else Configuration.empty(schema)
        )
        self._log: List[Tuple[Access, int]] = []
        self._metrics = metrics
        self._retry = retry_policy
        self._breakers = breakers
        if breakers is not None and metrics is not None:
            breakers.attach_metrics(metrics)
        self._merge_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema shared by the sources."""
        return self._schema

    @property
    def configuration(self) -> Configuration:
        """The facts retrieved so far (a copy; mutate via :meth:`perform`)."""
        return self._configuration.copy()

    @property
    def configuration_view(self) -> Configuration:
        """A *live, read-only* view of the current configuration.

        Unlike :attr:`configuration` this does not copy; the returned object
        changes as accesses are performed.  Callers must not mutate it — the
        answering strategies use it to avoid per-candidate deep copies.
        During a :meth:`perform_many` batch the view only changes on the
        dispatching thread (merges happen between, not during, caller
        callbacks), so strategies reading it from that thread never observe a
        partial merge.
        """
        return self._configuration

    @property
    def fingerprint(self) -> Tuple[int, ...]:
        """The content fingerprint of the current configuration."""
        return self._configuration.fingerprint()

    @property
    def access_count(self) -> int:
        """How many accesses have been performed."""
        return len(self._log)

    @property
    def access_log(self) -> Tuple[Tuple[Access, int], ...]:
        """The sequence of performed accesses with the number of tuples returned."""
        return tuple(self._log)

    def source_for(self, method_name: str) -> DataSource:
        """The source implementing ``method_name``."""
        try:
            return self._sources[method_name]
        except KeyError:
            raise SchemaError(f"no source for access method {method_name!r}") from None

    @property
    def retry_policy(self) -> Optional["RetryPolicy"]:
        """The retry policy applied to every source call, if any."""
        return self._retry

    @property
    def breakers(self) -> Optional["BreakerBoard"]:
        """The per-source circuit-breaker board, if any (``/healthz`` reads it)."""
        return self._breakers

    # ------------------------------------------------------------------ #
    # Access execution
    # ------------------------------------------------------------------ #
    def can_perform(self, access: Access) -> bool:
        """Whether the access is well-formed at the current configuration."""
        return is_well_formed(access, self._configuration)

    def _merge_response(self, access: Access, response: AccessResponse) -> int:
        """Merge one response under the writer lock; return the new-fact count.

        All-or-nothing: if a response tuple fails validation part-way
        (possible with duck-typed sources), the merged prefix is rolled back
        so the configuration never keeps facts from a failed access.
        """
        relation_name = access.relation.name
        with self._merge_lock:
            configuration = self._configuration
            added: List[Tuple[object, ...]] = []
            try:
                for values in response.facts:
                    if configuration.add(relation_name, values):
                        added.append(values)
            except Exception:
                for values in added:
                    configuration.remove(relation_name, values)
                raise
            new_facts = len(added)
            self._log.append((access, len(response)))
        if self._metrics is not None:
            self._metrics.incr("mediator.accesses")
            self._metrics.incr("mediator.facts_returned", len(response))
            self._metrics.incr("mediator.facts_new", new_facts)
        return new_facts

    def _respond_timed(self, access: Access, tracer, parent, tags=None):
        """Answer ``access``, measuring the round-trip; safe on worker threads.

        Returns ``(response, duration, span)`` where ``span`` is the recorded
        ``source-call`` span (``None`` when tracing is off) — the caller
        annotates merge-time facts onto it after the merge.  The per-access
        latency lands in the ``source.latency`` histogram whether or not
        tracing is on: percentiles are always-on telemetry, spans are opt-in.
        """
        source = self.source_for(access.method.name)
        start = time.time()
        t0 = time.perf_counter()
        response = source.respond(access)
        duration = time.perf_counter() - t0
        span = None
        if tracer.enabled:
            span_tags = {"method": access.method.name, "facts": len(response)}
            if tags:
                span_tags.update(tags)
            span = tracer.record_span(
                "source-call",
                start=start,
                duration=duration,
                parent=parent,
                tags=span_tags,
            )
        if self._metrics is not None:
            self._metrics.observe("source.latency", duration)
        return response, duration, span

    @staticmethod
    def _annotate_error(exc: BaseException, access: Access, attempts: int) -> BaseException:
        """Attach the failing access and attempt count to an error, best effort."""
        try:
            if getattr(exc, "access", None) is None:
                exc.access = access
            exc.attempts = attempts
        except Exception:  # pragma: no cover - exotic exception without __dict__
            pass
        return exc

    @staticmethod
    def _attach_batch_context(
        exc: BaseException, access: Access, timings: Sequence[Tuple[Access, float]]
    ) -> BaseException:
        """Enrich a batch-aborting error with the access and partial timings.

        The all-or-nothing raise of :meth:`perform_many` used to discard
        *which* access failed; callers now find it in ``error.access`` and
        the ``(access, duration)`` pairs merged before the failure in
        ``error.timings``.
        """
        try:
            if getattr(exc, "access", None) is None:
                exc.access = access
            exc.timings = tuple(timings)
        except Exception:  # pragma: no cover - exotic exception without __dict__
            pass
        return exc

    def _failure_span(
        self, tracer, parent, access: Access, tags, start, duration, error, attempt, gave_up,
        breaker_state=None,
    ) -> None:
        """Record a ``source-call`` span for a failed attempt (tracing only)."""
        if not tracer.enabled:
            return
        span_tags = {
            "method": access.method.name,
            "error": type(error).__name__,
            "attempt": attempt,
            "gave_up": gave_up,
        }
        if breaker_state is not None and breaker_state != "closed":
            span_tags["breaker"] = breaker_state
        if tags:
            span_tags.update(tags)
        tracer.record_span(
            "source-call", start=start, duration=duration, parent=parent, tags=span_tags
        )

    def _respond_resilient(self, access: Access, tracer, parent, tags=None, deadline=None):
        """Answer ``access`` under the retry policy, breaker, and deadline.

        Returns ``(response, duration, span, attempts)``.  Runs on worker
        threads: retries (and their backoff sleeps) overlap in the pool while
        merges stay on the dispatch thread.  With no policy, board, or
        deadline configured this is a pass-through to :meth:`_respond_timed`
        — the fault-free path is bit-identical to the pre-resilience code.
        """
        policy = self._retry
        board = self._breakers
        if policy is None and board is None and deadline is None:
            response, duration, span = self._respond_timed(access, tracer, parent, tags)
            return response, duration, span, 1
        breaker = board.breaker_for(access.method.name) if board is not None else None
        metrics = self._metrics
        attempts = 0
        while True:
            if deadline is not None and deadline.expired():
                raise self._annotate_error(
                    DeadlineExceeded(
                        f"deadline expired before access {access!r} could be attempted"
                    ),
                    access,
                    attempts,
                )
            if breaker is not None and not breaker.allow():
                if metrics is not None:
                    metrics.incr("breaker.fast_fail")
                exc = CircuitOpenError(
                    f"circuit breaker open for source {access.method.name!r}"
                )
                self._failure_span(
                    tracer, parent, access, tags, time.time(), 0.0, exc,
                    attempts + 1, True, breaker_state="open",
                )
                raise self._annotate_error(exc, access, attempts)
            attempts += 1
            start = time.time()
            t0 = time.perf_counter()
            try:
                response, duration, span = self._respond_timed(access, tracer, parent, tags)
            except Exception as exc:
                duration = time.perf_counter() - t0
                if breaker is not None:
                    breaker.record_failure()
                if metrics is not None:
                    metrics.incr("source.failures")
                retryable = (
                    policy is not None
                    and attempts < policy.max_attempts
                    and policy.is_retryable(exc)
                )
                backoff = 0.0
                if retryable:
                    backoff = policy.backoff_s(
                        access.method.name, access.binding, attempts
                    )
                    if deadline is not None and deadline.remaining() <= backoff:
                        retryable = False  # no budget left to wait out the backoff
                self._failure_span(
                    tracer, parent, access, tags, start, duration, exc,
                    attempts, not retryable,
                    breaker_state=None if breaker is None else breaker.state,
                )
                if not retryable:
                    if metrics is not None and policy is not None:
                        metrics.incr("retry.gave_up")
                    raise self._annotate_error(exc, access, attempts)
                if metrics is not None:
                    metrics.incr("retry.attempts")
                if backoff > 0.0:
                    time.sleep(backoff)
                continue
            if breaker is not None:
                breaker.record_success()
            if attempts > 1:
                if metrics is not None:
                    metrics.incr("retry.recovered")
                if span is not None:
                    span.annotate(attempt=attempts)
            return response, duration, span, attempts

    def _perform_counted_traced(
        self, access: Access, tracer, parent, tags=None, deadline=None
    ) -> Tuple[AccessResponse, int, float, int]:
        """The :meth:`perform_counted` body with explicit trace plumbing."""
        if not self.can_perform(access):
            raise self._annotate_error(
                AccessError(
                    f"access {access!r} is not well-formed at the current configuration"
                ),
                access,
                0,
            )
        response, duration, span, attempts = self._respond_resilient(
            access, tracer, parent, tags, deadline
        )
        new_facts = self._merge_response(access, response)
        if span is not None:
            span.annotate(new_facts=new_facts)
        return response, new_facts, duration, attempts

    def perform_counted(self, access: Access) -> Tuple[AccessResponse, int]:
        """Perform a well-formed access; return ``(response, new facts merged)``.

        ``new facts merged`` counts only tuples the configuration did not
        already contain — the progress measure the answering strategies use
        (a response full of already-known tuples is not progress).
        """
        tracer = _current_tracer()
        parent = tracer.context() if tracer.enabled else None
        response, new_facts, _duration, _attempts = self._perform_counted_traced(
            access, tracer, parent
        )
        return response, new_facts

    def perform(self, access: Access) -> AccessResponse:
        """Perform a well-formed access and merge its response.

        The response facts are merged into the configuration *in place* (the
        indexed instance absorbs them incrementally); external snapshots taken
        via :attr:`configuration` are unaffected.
        """
        return self.perform_counted(access)[0]

    def perform_many(
        self,
        accesses: Iterable[Access],
        *,
        max_concurrency: int = 1,
        stop: Optional[Callable[[], bool]] = None,
        should_perform: Optional[Callable[[Access], bool]] = None,
        on_performed: Optional[Callable[[Access, AccessResponse, int], None]] = None,
        on_timing: Optional[Callable[[Access, float], None]] = None,
        on_attempts: Optional[Callable[[Access, int], None]] = None,
        on_failure: Optional[Callable[[Access, BaseException, int], None]] = None,
        tags_for: Optional[Callable[[Access], Optional[Dict[str, object]]]] = None,
        deadline: Optional["Deadline"] = None,
    ) -> List[Tuple[Access, AccessResponse, int]]:
        """Perform a batch of accesses, overlapping their source latency.

        Up to ``max_concurrency`` accesses are in flight at once; worker
        threads only call :meth:`DataSource.respond` (wrapped in the
        mediator's retry policy and breaker, when configured), while this
        (the dispatching) thread checks well-formedness, consults
        ``should_perform`` immediately before each dispatch, merges completed
        responses one at a time under the writer lock, and evaluates ``stop``
        between completions.  Once ``stop`` returns true no further access is
        dispatched; accesses already in flight were genuinely sent to their
        sources, so their responses are still merged and logged (the
        performed set equals the dispatched set — except under an expired
        ``deadline``, which abandons in-flight work unmerged).

        ``on_performed`` is invoked on this thread right after each merge —
        callers tracking which accesses were performed (the executor's
        deduplication set) see every merge even if a later access of the
        batch fails and the call raises.  ``on_timing`` likewise runs on this
        thread after each merge with the access's measured source round-trip,
        so callers can feed per-access latency histograms, and
        ``on_attempts`` reports how many source-call attempts the access
        took (1 unless the retry policy kicked in).  ``tags_for`` is
        evaluated at dispatch time (on this thread) and its tags land on the
        access's ``source-call`` trace span — the hook the executor uses to
        attach why-was-this-access-performed annotations.

        Failure semantics: with ``on_failure`` *unset*, the first failing
        access aborts the batch — remaining in-flight work is drained, then
        the error is re-raised carrying the failing ``Access`` in
        ``error.access``, the ``(access, duration)`` pairs merged before the
        failure in ``error.timings``, and the attempt count in
        ``error.attempts``.  With ``on_failure`` set, each failure is
        reported on this thread as ``on_failure(access, error, attempts)``
        and the rest of the batch proceeds — the degraded mode the answering
        runtime uses so one flaky source cannot wedge its batchmates.

        ``deadline`` bounds the whole batch: no new access is dispatched
        after expiry, retries never back off past it, and if it expires with
        work still hung in flight those accesses are abandoned (reported as
        :class:`~repro.exceptions.DeadlineExceeded`; the worker threads
        finish in the background and their responses are discarded, never
        merged).  A batch with a deadline runs on the pooled path even at
        ``max_concurrency=1`` so a hung source cannot block past expiry.

        Tracing note: the tracer active on *this* thread at entry, and its
        innermost open span, are captured once — worker threads record their
        ``source-call`` spans against that explicit parent, since
        thread-locals do not follow work into the pool.

        Returns ``(access, response, new facts merged)`` triples in merge
        (completion) order.  With ``max_concurrency <= 1`` (and no deadline)
        the batch runs strictly sequentially on this thread with identical
        semantics.
        """
        pending = deque(accesses)
        performed: List[Tuple[Access, AccessResponse, int]] = []
        completed_timings: List[Tuple[Access, float]] = []
        tracer = _current_tracer()
        batch_parent = tracer.context() if tracer.enabled else None

        def dispatch_tags(access: Access) -> Optional[Dict[str, object]]:
            if tags_for is None or not tracer.enabled:
                return None
            return tags_for(access)

        def record(access: Access, response: AccessResponse, new_facts: int) -> None:
            performed.append((access, response, new_facts))
            if on_performed is not None:
                on_performed(access, response, new_facts)

        if max_concurrency <= 1 and deadline is None:
            while pending:
                if stop is not None and stop():
                    break
                access = pending.popleft()
                if should_perform is not None and not should_perform(access):
                    continue
                try:
                    response, new_facts, duration, attempts = self._perform_counted_traced(
                        access, tracer, batch_parent, dispatch_tags(access)
                    )
                except Exception as exc:
                    if on_failure is not None:
                        on_failure(access, exc, getattr(exc, "attempts", 1))
                        continue
                    raise self._attach_batch_context(exc, access, completed_timings)
                completed_timings.append((access, duration))
                if on_timing is not None:
                    on_timing(access, duration)
                if on_attempts is not None:
                    on_attempts(access, attempts)
                record(access, response, new_facts)
            return performed

        board = self._breakers
        errors: List[BaseException] = []
        stopped = False
        abandoned = False
        pool = ThreadPoolExecutor(max_workers=max(1, max_concurrency))
        try:
            in_flight: Dict[object, Access] = {}

            def fail(access: Access, exc: BaseException, attempts: int) -> bool:
                """Report one failure; return True if the batch must stop."""
                nonlocal stopped
                if on_failure is not None:
                    on_failure(access, exc, attempts)
                    return False
                errors.append(self._attach_batch_context(exc, access, completed_timings))
                stopped = True
                return True

            def dispatch_more() -> None:
                nonlocal stopped
                while pending and len(in_flight) < max_concurrency and not stopped:
                    if stop is not None and stop():
                        stopped = True
                        break
                    if deadline is not None and deadline.expired():
                        stopped = True
                        break
                    access = pending.popleft()
                    if should_perform is not None and not should_perform(access):
                        continue
                    if board is not None and board.breaker_for(
                        access.method.name
                    ).fail_fast():
                        # Known-open breaker: fail fast on the dispatch thread
                        # instead of queueing doomed work into the pool.
                        if self._metrics is not None:
                            self._metrics.incr("breaker.fast_fail")
                        exc = self._annotate_error(
                            CircuitOpenError(
                                f"circuit breaker open for source "
                                f"{access.method.name!r}"
                            ),
                            access,
                            0,
                        )
                        if fail(access, exc, 0):
                            break
                        continue
                    if not self.can_perform(access):
                        exc = self._annotate_error(
                            AccessError(
                                f"access {access!r} is not well-formed at the "
                                f"current configuration"
                            ),
                            access,
                            0,
                        )
                        if fail(access, exc, 0):
                            break
                        continue
                    in_flight[
                        pool.submit(
                            self._respond_resilient,
                            access,
                            tracer,
                            batch_parent,
                            dispatch_tags(access),
                            deadline,
                        )
                    ] = access

            dispatch_more()
            while in_flight:
                timeout = None
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining != float("inf"):
                        timeout = max(0.0, remaining)
                done, _ = futures_wait(
                    in_flight, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # The deadline expired with work still hung in flight:
                    # abandon it.  Queued-but-unstarted futures are
                    # cancelled; running workers finish in the background
                    # and their responses are discarded, never merged.
                    abandoned = True
                    stopped = True
                    if self._metrics is not None:
                        self._metrics.incr("deadline.abandoned", len(in_flight))
                    for future, access in list(in_flight.items()):
                        future.cancel()
                        exc = self._annotate_error(
                            DeadlineExceeded(
                                f"deadline expired with access {access!r} in flight"
                            ),
                            access,
                            0,
                        )
                        fail(access, exc, 0)
                    in_flight.clear()
                    break
                for future in done:
                    access = in_flight.pop(future)
                    try:
                        response, duration, span, attempts = future.result()
                    except BaseException as exc:  # drain remaining in-flight work
                        fail(access, exc, getattr(exc, "attempts", 1))
                        continue
                    try:
                        new_facts = self._merge_response(access, response)
                    except BaseException as exc:
                        fail(access, exc, attempts)
                        continue
                    if span is not None:
                        span.annotate(new_facts=new_facts)
                    completed_timings.append((access, duration))
                    if on_timing is not None:
                        on_timing(access, duration)
                    if on_attempts is not None:
                        on_attempts(access, attempts)
                    record(access, response, new_facts)
                if stop is not None and not stopped and stop():
                    stopped = True
                dispatch_more()
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        if errors:
            raise errors[0]
        return performed

    def seed_constants(self, constants: Iterable[Tuple[object, object]]) -> None:
        """Make constants (e.g. query constants) available for dependent bindings."""
        for value, domain in constants:
            self._configuration.add_constant(value, domain)

    def serve(self, **server_kwargs):
        """A :class:`~repro.runtime.server.QueryServer` over this mediator.

        Convenience entry point for the multi-query runtime::

            with mediator.serve(search_workers=4, cache_path="witness.jsonl") as server:
                result = server.answer([q1, q2, q3])

        All keyword arguments are forwarded to the server's constructor.
        The server shares this mediator's configuration: every access any
        query triggers is visible to later ``answer`` calls (and to direct
        :meth:`perform` callers).
        """
        from repro.runtime.server import QueryServer

        return QueryServer(self, **server_kwargs)
