"""Simulated deep-Web sources, mediator, and the introduction's bank scenario."""

from repro.sources.bank import BankScenario, build_bank_scenario, build_bank_schema
from repro.sources.service import DataSource, FailurePolicy, Mediator

__all__ = [
    "DataSource",
    "FailurePolicy",
    "Mediator",
    "BankScenario",
    "build_bank_schema",
    "build_bank_scenario",
]
