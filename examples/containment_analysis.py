"""Containment under access limitations: Example 3.2 and the reductions of
Section 3, executed end to end.

Run with:  python examples/containment_analysis.py
"""

from __future__ import annotations

from repro import (
    containment_to_ltr,
    cq_contained_in,
    decide_containment,
    find_non_containment_witness,
    ltr_to_containment,
)
from repro.core import is_ltr_direct
from repro.workloads import containment_example_scenario, dependent_chain_scenario


def main() -> None:
    # ------------------------------------------------------------------ #
    # Example 3.2: containment that only holds because of access limitations.
    # ------------------------------------------------------------------ #
    schema, configuration, query_r, query_s = containment_example_scenario()
    print("Schema: R (dependent Boolean access), S (free access), one shared domain")
    print("Q1 = exists x R(x),  Q2 = exists x S(x)")
    print("  classical containment Q1 <= Q2:        ", cq_contained_in(query_r, query_s))
    print(
        "  containment under access limitations:   ",
        decide_containment(query_r, query_s, schema, configuration),
    )
    witness = find_non_containment_witness(query_s, query_r, schema, configuration)
    print("  witness that Q2 is NOT contained in Q1: ", witness.new_facts if witness else None)
    print()

    # ------------------------------------------------------------------ #
    # Proposition 3.3: containment as non-relevance of a probe access.
    # ------------------------------------------------------------------ #
    reduction = containment_to_ltr(query_r, query_s, configuration, schema)
    probe_ltr = is_ltr_direct(
        reduction.query, reduction.access, reduction.configuration, reduction.schema
    )
    print("Proposition 3.3: Q1 <= Q2 iff the probe access is NOT long-term relevant")
    print("  probe access LTR:", probe_ltr, " => containment:", not probe_ltr)
    print()

    # ------------------------------------------------------------------ #
    # Proposition 3.4: relevance as non-containment of a rewritten query.
    # ------------------------------------------------------------------ #
    scenario = dependent_chain_scenario(2)
    reduction2 = ltr_to_containment(
        scenario.query, scenario.access, scenario.configuration, scenario.schema
    )
    contained = decide_containment(
        reduction2.contained_query,
        reduction2.containing_query,
        reduction2.schema,
        reduction2.configuration,
    )
    print("Proposition 3.4 on the dependent chain scenario:")
    print("  rewritten query contained in original:", contained)
    print("  => access long-term relevant:          ", not contained)


if __name__ == "__main__":
    main()
