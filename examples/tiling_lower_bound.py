"""The tiling gadget behind the paper's lower bounds, executed on small corridors.

Theorem 5.1 and Proposition 6.2 prove hardness of containment under access
limitations by encoding corridor tiling problems: chained dependent accesses
force any witness of non-containment to spell out a full tiling.  This example
builds the reduction for a few tiny corridors and compares the containment
answer with a brute-force tiling solver.

Run with:  python examples/tiling_lower_bound.py
"""

from __future__ import annotations

from repro.core import ContainmentOptions, decide_containment
from repro.reductions import has_tiling, sample_problems, solve_tiling, tiling_to_containment


def main() -> None:
    for name, problem in sample_problems(width=2):
        instance = tiling_to_containment(problem)
        contained = decide_containment(
            instance.final_row_query,
            instance.violation_query,
            instance.schema,
            instance.configuration,
            ContainmentOptions(max_support_facts=0),
        )
        solution = solve_tiling(problem)
        print(f"problem {name!r}")
        print(f"  corridor width {problem.width}, {len(problem.tile_types)} tile types")
        print(f"  brute-force solver finds a tiling: {has_tiling(problem)}")
        if solution:
            print(f"    rows: {solution}")
        print(f"  final-row query contained in violation query: {contained}")
        print(f"  => reduction answer (tiling exists iff NOT contained): {not contained}")
        print()


if __name__ == "__main__":
    main()
