"""The query server end to end: batch answering, search workers, warm restarts.

A mediator is asked eight variants of the bank's motivating query at once —
*is there a loan officer in <state>, with <offering> approved there?*  The
demo answers the batch three ways:

1. eight independent relevance-guided runs (the per-query library usage);
2. one :class:`~repro.runtime.server.QueryServer` call — the batch shares
   one configuration, so common accesses are performed once, and with
   ``search_workers`` the per-query witness searches run on worker
   processes;
3. the same server *restarted*: a second server process warms up from the
   :class:`~repro.runtime.persist.PersistentWitnessCache` file the first one
   wrote, revalidating stored witness paths instead of searching fresh.

Run with:  python examples/serve_demo.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.planner import relevance_guided_strategy
from repro.runtime import QueryServer, RuntimeMetrics
from repro.workloads import bank_multi_query_scenario


def main() -> None:
    scenario = bank_multi_query_scenario(8, employees=6, offices=3, states=4)
    print(f"Scenario {scenario.name}: {len(scenario.queries)} queries")
    for query in scenario.queries:
        print("  ", query)
    print()

    # -- 1. Eight independent guided runs ------------------------------- #
    started = time.perf_counter()
    singles = [
        relevance_guided_strategy(scenario.mediator(), query)
        for query in scenario.queries
    ]
    single_wall = time.perf_counter() - started
    print("Independent guided runs (per-query library usage):")
    print("  answers:        ", [result.boolean_answer for result in singles])
    print("  accesses (sum): ", sum(result.accesses_made for result in singles))
    print(f"  wall clock:      {single_wall * 1000:.0f} ms")
    print()

    workers = min(4, os.cpu_count() or 1)
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "witness.jsonl")

        # -- 2. One server call over the shared configuration ----------- #
        metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(),
            search_workers=workers,
            cache_path=cache_path,
            metrics=metrics,
        ) as server:
            started = time.perf_counter()
            result = server.answer(scenario.queries)
            server_wall = time.perf_counter() - started
        counters = metrics.snapshot()["counters"]
        print(f"QueryServer batch (search_workers={workers}):")
        print("  answers:        ", list(result.boolean_answers))
        print("  accesses:       ", result.accesses_made, "(shared across the batch)")
        print("  rounds:         ", result.rounds)
        print("  fresh searches: ", counters.get("oracle.fresh_searches", 0))
        print("  pool searches:  ", counters.get("oracle.pool_searches", 0))
        print("  witnesses saved:", counters.get("persist.recorded", 0))
        print(f"  wall clock:      {server_wall * 1000:.0f} ms")
        print()
        assert list(result.boolean_answers) == [
            single.boolean_answer for single in singles
        ]

        # -- 3. Warm restart from the persistent witness cache ---------- #
        warm_metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(), cache_path=cache_path, metrics=warm_metrics
        ) as restarted:
            started = time.perf_counter()
            warm = restarted.answer(scenario.queries)
            warm_wall = time.perf_counter() - started
        warm_counters = warm_metrics.snapshot()["counters"]
        print("Warm restart (fresh server, same witness cache file):")
        print("  answers:        ", list(warm.boolean_answers))
        print("  seeded paths:   ", warm_counters.get("persist.seeded", 0))
        print("  revalidated:    ", warm_counters.get("witness.revalidated", 0))
        print("  fresh searches: ", warm_counters.get("oracle.fresh_searches", 0))
        print(f"  wall clock:      {warm_wall * 1000:.0f} ms")
        assert warm.answers == result.answers


if __name__ == "__main__":
    main()
