"""The query server end to end: batch answering, search workers, warm restarts.

A mediator is asked eight variants of the bank's motivating query at once —
*is there a loan officer in <state>, with <offering> approved there?*  The
demo answers the batch three ways:

1. eight independent relevance-guided runs (the per-query library usage);
2. one :class:`~repro.runtime.server.QueryServer` call — the batch shares
   one configuration, so common accesses are performed once, and with
   ``search_workers`` the per-query witness searches run on worker
   processes;
3. the same server *restarted*: a second server process warms up from the
   :class:`~repro.runtime.persist.PersistentWitnessCache` file the first one
   wrote, revalidating stored witness paths instead of searching fresh.

The warm-restart batch runs under a live :class:`~repro.runtime.Tracer`, so
the demo closes with the observability surface: the latency histograms'
p50/p99, the per-query ``explain`` report, and a Chrome-trace (Perfetto)
file plus Prometheus snapshot written to ``REPRO_OBS_DIR`` (defaults to the
working directory).

Run with:  python examples/serve_demo.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.planner import relevance_guided_strategy
from repro.runtime import (
    QueryServer,
    RuntimeMetrics,
    Tracer,
    explain_trace,
    prometheus_text,
    write_chrome_trace,
)
from repro.workloads import bank_multi_query_scenario


def main() -> None:
    scenario = bank_multi_query_scenario(8, employees=6, offices=3, states=4)
    print(f"Scenario {scenario.name}: {len(scenario.queries)} queries")
    for query in scenario.queries:
        print("  ", query)
    print()

    # -- 1. Eight independent guided runs ------------------------------- #
    started = time.perf_counter()
    singles = [
        relevance_guided_strategy(scenario.mediator(), query)
        for query in scenario.queries
    ]
    single_wall = time.perf_counter() - started
    print("Independent guided runs (per-query library usage):")
    print("  answers:        ", [result.boolean_answer for result in singles])
    print("  accesses (sum): ", sum(result.accesses_made for result in singles))
    print(f"  wall clock:      {single_wall * 1000:.0f} ms")
    print()

    workers = min(4, os.cpu_count() or 1)
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "witness.jsonl")

        # -- 2. One server call over the shared configuration ----------- #
        metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(),
            search_workers=workers,
            cache_path=cache_path,
            metrics=metrics,
        ) as server:
            started = time.perf_counter()
            result = server.answer(scenario.queries)
            server_wall = time.perf_counter() - started
        counters = metrics.snapshot()["counters"]
        print(f"QueryServer batch (search_workers={workers}):")
        print("  answers:        ", list(result.boolean_answers))
        print("  accesses:       ", result.accesses_made, "(shared across the batch)")
        print("  rounds:         ", result.rounds)
        print("  fresh searches: ", counters.get("oracle.fresh_searches", 0))
        print("  pool searches:  ", counters.get("oracle.pool_searches", 0))
        print("  witnesses saved:", counters.get("persist.recorded", 0))
        print(f"  wall clock:      {server_wall * 1000:.0f} ms")
        print()
        assert list(result.boolean_answers) == [
            single.boolean_answer for single in singles
        ]

        # -- 3. Warm restart from the persistent witness cache ---------- #
        # This batch is fully traced: the tracer records the span tree the
        # observability section below renders and exports.
        warm_metrics = RuntimeMetrics()
        tracer = Tracer()
        with QueryServer(
            scenario.mediator(),
            cache_path=cache_path,
            metrics=warm_metrics,
            tracer=tracer,
        ) as restarted:
            started = time.perf_counter()
            warm = restarted.answer(scenario.queries)
            warm_wall = time.perf_counter() - started
        warm_counters = warm_metrics.snapshot()["counters"]
        print("Warm restart (fresh server, same witness cache file):")
        print("  answers:        ", list(warm.boolean_answers))
        print("  seeded paths:   ", warm_counters.get("persist.seeded", 0))
        print("  revalidated:    ", warm_counters.get("witness.revalidated", 0))
        print("  fresh searches: ", warm_counters.get("oracle.fresh_searches", 0))
        print(f"  wall clock:      {warm_wall * 1000:.0f} ms")
        print()
        assert warm.answers == result.answers

        # -- 4. Observability: histograms, explain report, artifacts ---- #
        histograms = warm_metrics.snapshot()["histograms"]
        print("Latency histograms (warm-restart batch):")
        for name in ("server.query_latency", "server.round_latency", "access.latency"):
            summary = histograms.get(name)
            if not summary or not summary["count"]:
                continue
            print(
                f"  {name:22s}  n={summary['count']:<4d} "
                f"p50={summary['p50'] * 1000:8.3f} ms  "
                f"p99={summary['p99'] * 1000:8.3f} ms"
            )
        print()

        obs_dir = os.environ.get("REPRO_OBS_DIR", ".")
        os.makedirs(obs_dir, exist_ok=True)
        trace_path = os.path.join(obs_dir, "serve_demo_trace.json")
        events = write_chrome_trace(trace_path, tracer)
        prom_path = os.path.join(obs_dir, "serve_demo_metrics.prom")
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(warm_metrics))
        print(f"Wrote {events} trace events to {trace_path} (open in Perfetto)")
        print(f"Wrote Prometheus snapshot to {prom_path}")
        print()

        spans = tracer.spans()
        print(f"Explain report (first query's trace, {len(spans)} spans total):")
        report = explain_trace(spans)
        # The full report covers the whole batch; print a readable prefix.
        lines = report.splitlines()
        for line in lines[:30]:
            print("  " + line)
        if len(lines) > 30:
            print(f"  ... ({len(lines) - 30} more lines)")


if __name__ == "__main__":
    main()
