"""The query server end to end: batch answering, search workers, warm restarts.

A mediator is asked eight variants of the bank's motivating query at once —
*is there a loan officer in <state>, with <offering> approved there?*  The
demo answers the batch three ways:

1. eight independent relevance-guided runs (the per-query library usage);
2. one :class:`~repro.runtime.server.QueryServer` call — the batch shares
   one configuration, so common accesses are performed once, and with
   ``search_workers`` the per-query witness searches run on worker
   processes;
3. the same server *restarted*: a second server process warms up from the
   :class:`~repro.runtime.persist.PersistentWitnessCache` file the first one
   wrote, revalidating stored witness paths instead of searching fresh.

The warm-restart batch runs under a live :class:`~repro.runtime.Tracer`, so
the demo closes with the observability surface: the latency histograms'
p50/p99, the per-query ``explain`` report, and a Chrome-trace (Perfetto)
file plus Prometheus snapshot written to ``REPRO_OBS_DIR`` (defaults to the
working directory).

Run with:  python examples/serve_demo.py

``--backend sqlite`` runs the same demo over the SQLite witness store
(WAL mode, safe for concurrent server processes), and ``--multiproc N``
demonstrates exactly that: N *processes*, each a full server, answer the
batch concurrently against one shared SQLite store, after which a cold
process warm-starts from the corpus the fleet built.

Two service modes ride along (see docs/operations.md):

* ``--serve [--port 8080]`` starts the network-facing
  :class:`~repro.runtime.service.AnsweringService` over the same bank
  workload and serves until interrupted (Ctrl-C drains);
* ``--service-smoke`` is the CI job body: starts the service on a free
  port, submits the bank batch over real HTTP, scrapes ``/metrics``, and
  asserts the served answers equal a direct in-process
  :meth:`QueryServer.answer` on the same scenario.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import tempfile
import time
import urllib.request

from repro.planner import relevance_guided_strategy
from repro.runtime import (
    AdmissionController,
    BreakerBoard,
    QueryServer,
    RetryPolicy,
    RuntimeMetrics,
    Tracer,
    explain_trace,
    prometheus_text,
    serve_in_background,
    write_chrome_trace,
)
from repro.workloads import bank_multi_query_scenario, flaky_scenario


def main(backend: str = "jsonl") -> None:
    scenario = bank_multi_query_scenario(8, employees=6, offices=3, states=4)
    print(f"Scenario {scenario.name}: {len(scenario.queries)} queries")
    for query in scenario.queries:
        print("  ", query)
    print()

    # -- 1. Eight independent guided runs ------------------------------- #
    started = time.perf_counter()
    singles = [
        relevance_guided_strategy(scenario.mediator(), query)
        for query in scenario.queries
    ]
    single_wall = time.perf_counter() - started
    print("Independent guided runs (per-query library usage):")
    print("  answers:        ", [result.boolean_answer for result in singles])
    print("  accesses (sum): ", sum(result.accesses_made for result in singles))
    print(f"  wall clock:      {single_wall * 1000:.0f} ms")
    print()

    workers = min(4, os.cpu_count() or 1)
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, f"witness.{backend}")

        # -- 2. One server call over the shared configuration ----------- #
        metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(),
            search_workers=workers,
            cache_path=cache_path,
            cache_backend=backend,
            metrics=metrics,
        ) as server:
            started = time.perf_counter()
            result = server.answer(scenario.queries)
            server_wall = time.perf_counter() - started
        counters = metrics.snapshot()["counters"]
        print(f"QueryServer batch (search_workers={workers}, backend={backend}):")
        print("  answers:        ", list(result.boolean_answers))
        print("  accesses:       ", result.accesses_made, "(shared across the batch)")
        print("  rounds:         ", result.rounds)
        print("  fresh searches: ", counters.get("oracle.fresh_searches", 0))
        print("  pool searches:  ", counters.get("oracle.pool_searches", 0))
        print("  witnesses saved:", counters.get("persist.recorded", 0))
        print(f"  wall clock:      {server_wall * 1000:.0f} ms")
        print()
        assert list(result.boolean_answers) == [
            single.boolean_answer for single in singles
        ]

        # -- 3. Warm restart from the persistent witness cache ---------- #
        # This batch is fully traced: the tracer records the span tree the
        # observability section below renders and exports.
        warm_metrics = RuntimeMetrics()
        tracer = Tracer()
        with QueryServer(
            scenario.mediator(),
            cache_path=cache_path,
            cache_backend=backend,
            metrics=warm_metrics,
            tracer=tracer,
        ) as restarted:
            started = time.perf_counter()
            warm = restarted.answer(scenario.queries)
            warm_wall = time.perf_counter() - started
        warm_counters = warm_metrics.snapshot()["counters"]
        print("Warm restart (fresh server, same witness cache file):")
        print("  answers:        ", list(warm.boolean_answers))
        print("  seeded paths:   ", warm_counters.get("persist.seeded", 0))
        print("  revalidated:    ", warm_counters.get("witness.revalidated", 0))
        print("  fresh searches: ", warm_counters.get("oracle.fresh_searches", 0))
        print(f"  wall clock:      {warm_wall * 1000:.0f} ms")
        print()
        assert warm.answers == result.answers

        # -- 4. Observability: histograms, explain report, artifacts ---- #
        histograms = warm_metrics.snapshot()["histograms"]
        print("Latency histograms (warm-restart batch):")
        for name in ("server.query_latency", "server.round_latency", "access.latency"):
            summary = histograms.get(name)
            if not summary or not summary["count"]:
                continue
            print(
                f"  {name:22s}  n={summary['count']:<4d} "
                f"p50={summary['p50'] * 1000:8.3f} ms  "
                f"p99={summary['p99'] * 1000:8.3f} ms"
            )
        print()

        obs_dir = os.environ.get("REPRO_OBS_DIR", ".")
        os.makedirs(obs_dir, exist_ok=True)
        trace_path = os.path.join(obs_dir, "serve_demo_trace.json")
        events = write_chrome_trace(trace_path, tracer)
        prom_path = os.path.join(obs_dir, "serve_demo_metrics.prom")
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(warm_metrics))
        print(f"Wrote {events} trace events to {trace_path} (open in Perfetto)")
        print(f"Wrote Prometheus snapshot to {prom_path}")
        print()

        spans = tracer.spans()
        print(f"Explain report (first query's trace, {len(spans)} spans total):")
        report = explain_trace(spans)
        # The full report covers the whole batch; print a readable prefix.
        lines = report.splitlines()
        for line in lines[:30]:
            print("  " + line)
        if len(lines) > 30:
            print(f"  ... ({len(lines) - 30} more lines)")


def _fleet_worker(cache_path: str, out_path: str) -> None:
    """One server process of the ``--multiproc`` fleet (module-level so the
    ``spawn`` start method can pickle it)."""
    scenario = bank_multi_query_scenario(8, employees=6, offices=3, states=4)
    metrics = RuntimeMetrics()
    with QueryServer(
        scenario.mediator(),
        cache_path=cache_path,
        cache_backend="sqlite",
        metrics=metrics,
    ) as server:
        started = time.perf_counter()
        result = server.answer(scenario.queries)
        wall = time.perf_counter() - started
    counters = metrics.snapshot()["counters"]
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "answers": list(result.boolean_answers),
                "fresh": counters.get("oracle.fresh_searches", 0),
                "revalidated": counters.get("witness.revalidated", 0),
                "recorded": counters.get("persist.recorded", 0),
                "seeded": counters.get("persist.seeded", 0),
                "wall_ms": round(wall * 1000),
            },
            handle,
        )


def multiproc_demo(workers: int) -> None:
    """N concurrent server *processes* sharing one SQLite witness store."""
    ctx = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "witness.sqlite")
        print(f"Fleet: {workers} server processes, one shared SQLite store")
        outs = [os.path.join(tmp, f"worker-{index}.json") for index in range(workers)]
        procs = [
            ctx.Process(target=_fleet_worker, args=(cache_path, out))
            for out in outs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        reports = []
        for index, out in enumerate(outs):
            with open(out, "r", encoding="utf-8") as handle:
                report = json.load(handle)
            reports.append(report)
            print(
                f"  worker {index}: answers={report['answers']} "
                f"fresh={report['fresh']} recorded={report['recorded']} "
                f"wall={report['wall_ms']} ms"
            )
        assert all(r["answers"] == reports[0]["answers"] for r in reports)
        print()

        probe_out = os.path.join(tmp, "probe.json")
        probe = ctx.Process(target=_fleet_worker, args=(cache_path, probe_out))
        probe.start()
        probe.join()
        with open(probe_out, "r", encoding="utf-8") as handle:
            warm = json.load(handle)
        print("Cold process warm-starting from the fleet's store:")
        print("  seeded paths:   ", warm["seeded"])
        print("  revalidated:    ", warm["revalidated"])
        print("  fresh searches: ", warm["fresh"], f"(cold: {reports[0]['fresh']})")
        print(f"  wall clock:      {warm['wall_ms']} ms")
        assert warm["answers"] == reports[0]["answers"]
        assert warm["fresh"] < reports[0]["fresh"]


def _post_json(url: str, document: dict) -> dict:
    _status, parsed = _post_json_status(url, document)
    return parsed


def _post_json_status(url: str, document: dict) -> tuple:
    """POST and return ``(status, parsed_body)`` (2xx only; 4xx/5xx raise)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def serve(port: int, rate: float, round_budget: int) -> None:
    """Run the answering service in the foreground until interrupted."""
    scenario = bank_multi_query_scenario(8, employees=6, offices=3, states=4)
    server = QueryServer(scenario.mediator(), metrics=RuntimeMetrics())
    admission = AdmissionController(
        rate=rate if rate > 0 else None,
        round_budget=round_budget if round_budget > 0 else None,
        pool=server.pool,
        metrics=server.metrics,
    )
    handle = serve_in_background(server, port=port, admission=admission)
    print(f"Answering service listening on {handle.base_url}")
    print("Example queries over this schema:")
    for query in scenario.queries[:2]:
        print("  ", query)
    print()
    print("Submit one and wait:")
    print(
        f"  curl -s -X POST '{handle.base_url}/queries?wait=1' "
        f"-d '{{\"query\": \"{scenario.queries[0]}\"}}'"
    )
    print(f"Metrics:  curl -s {handle.base_url}/metrics")
    print("Ctrl-C drains and exits.")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nDraining...")
    finally:
        handle.shutdown()
        server.close()
    print("Shut down cleanly.")


def service_smoke() -> None:
    """The CI service smoke: HTTP answers ≡ direct answers, /metrics parses."""
    scenario = bank_multi_query_scenario(6, employees=5, offices=3, states=3)
    direct = QueryServer(scenario.mediator()).answer(scenario.queries)
    expected = [
        {
            "boolean": outcome.boolean_answer,
            "answers": json.loads(
                json.dumps(
                    [list(row) for row in sorted(outcome.answers, key=repr)],
                    default=str,
                )
            ),
        }
        for outcome in direct.outcomes
    ]

    server = QueryServer(scenario.mediator(), metrics=RuntimeMetrics())
    handle = serve_in_background(server)
    try:
        document = _post_json(
            f"{handle.base_url}/queries?wait=1",
            {"queries": [str(q) for q in scenario.queries], "client": "smoke"},
        )
        served = document["queries"]
        assert len(served) == len(expected), "served count mismatch"
        for record, reference in zip(served, expected):
            assert record["state"] == "done", record
            assert record["outcome"]["boolean"] == reference["boolean"], record
            assert record["outcome"]["answers"] == reference["answers"], record
        print(f"HTTP answers match direct answers for {len(served)} queries")

        with urllib.request.urlopen(
            f"{handle.base_url}/metrics", timeout=30
        ) as response:
            assert response.status == 200
            text = response.read().decode("utf-8")
        families = {
            line.split(" ")[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        }
        for family in (
            "repro_service_http_requests_total",
            "repro_admission_accepted_total",
            "repro_service_queue_depth",
            "repro_server_query_latency_seconds",
        ):
            assert family in families, f"missing metric family {family}"
        print(f"/metrics exposition OK ({len(families)} families)")
    finally:
        handle.shutdown()
        server.close()
    print("service smoke PASSED")


def chaos_demo() -> None:
    """The CI chaos smoke: faulty sources behind the full service stack.

    A seeded flaky fanout scenario (transient faults everywhere, the hub
    permanently down after two calls) is served over real HTTP with retries,
    circuit breakers, and a per-query deadline armed.  Asserts the
    fault-tolerance contract end to end: no query ends in the ``failed``
    state, degraded outcomes surface as HTTP 206 with sound answer subsets,
    and ``/healthz`` reports the breaker states.
    """
    # Transient faults everywhere, plus one branch source permanently down
    # from its first call — the queries joining that branch cannot reach
    # certainty and must retire degraded instead of failing or hanging.
    scenario = flaky_scenario(
        "fanout",
        seed=11,
        transient_rate=0.25,
        hard_fail_after=0,
        hard_fail_methods=("accB2",),
        n_queries=6,
    )
    reference = QueryServer(scenario.mediator(chaos=False)).answer(
        list(scenario.queries)
    )
    print(f"Chaos scenario {scenario.name}: {len(scenario.queries)} queries")
    print("  fault-free answers:", list(reference.boolean_answers))

    metrics = RuntimeMetrics()
    mediator = scenario.mediator(
        chaos=True,
        retry_policy=RetryPolicy(max_attempts=4, base_backoff_s=0.005, seed=11),
        breakers=BreakerBoard(failure_threshold=3, reset_timeout_s=30.0),
        metrics=metrics,
    )
    server = QueryServer(mediator, metrics=metrics)
    admission = AdmissionController(
        deadline_s=30.0, pool=server.pool, metrics=metrics
    )
    handle = serve_in_background(server, admission=admission)
    try:
        status, document = _post_json_status(
            f"{handle.base_url}/queries?wait=1",
            {"queries": [str(q) for q in scenario.queries], "client": "chaos"},
        )
        served = document["queries"]
        assert len(served) == len(scenario.queries), "served count mismatch"
        degraded = [record for record in served if record["state"] == "degraded"]
        failed = [record for record in served if record["state"] == "failed"]
        assert not failed, f"chaos run must not fail queries outright: {failed}"
        expected_status = 206 if degraded else 200
        assert status == expected_status, (status, expected_status)
        for record, outcome in zip(served, reference.outcomes):
            answers = {
                tuple(str(v) for v in row)
                for row in record["outcome"]["answers"]
            }
            full = {tuple(str(v) for v in row) for row in outcome.answers}
            assert answers <= full, (
                f"degraded answers must be a sound subset: {record}"
            )
            if record["state"] == "degraded":
                assert record["outcome"]["degraded"], record
        print(
            f"  served {len(served)} queries over HTTP {status}: "
            f"{len(degraded)} degraded, 0 failed"
        )

        with urllib.request.urlopen(
            f"{handle.base_url}/healthz", timeout=30
        ) as response:
            health = json.loads(response.read().decode("utf-8"))
        assert "breakers" in health, health
        print("  /healthz breakers:", health["breakers"])

        counters = metrics.snapshot()["counters"]
        for name in ("retry.attempts", "source.failures"):
            assert counters.get(name, 0) > 0, f"expected {name} > 0"
        print(
            "  retries:", counters.get("retry.attempts", 0),
            " recovered:", counters.get("retry.recovered", 0),
            " gave up:", counters.get("retry.gave_up", 0),
            " breaker fast-fails:", counters.get("breaker.fast_fail", 0),
        )
    finally:
        handle.shutdown()
        server.close()
    print("chaos smoke PASSED")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--serve", action="store_true", help="run the HTTP answering service"
    )
    parser.add_argument(
        "--service-smoke",
        action="store_true",
        help="start the service, answer the bank batch over HTTP, assert "
        "equivalence with the in-process server (the CI smoke)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="serve a seeded flaky scenario with retries, breakers, and "
        "deadlines armed; assert degraded outcomes are sound (the CI "
        "chaos smoke)",
    )
    parser.add_argument(
        "--backend",
        choices=("jsonl", "sqlite"),
        default="jsonl",
        help="witness store backend for the main demo (default: jsonl)",
    )
    parser.add_argument(
        "--multiproc",
        type=int,
        default=0,
        metavar="N",
        help="run N concurrent server processes against one shared SQLite "
        "store, then warm-start a cold process from it",
    )
    parser.add_argument("--port", type=int, default=8080, help="--serve port")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="--serve per-client rate limit in queries/second (0 = off)",
    )
    parser.add_argument(
        "--round-budget",
        type=int,
        default=0,
        help="--serve per-query round fairness budget (0 = off)",
    )
    arguments = parser.parse_args()
    if arguments.chaos:
        chaos_demo()
    elif arguments.service_smoke:
        service_smoke()
    elif arguments.serve:
        serve(arguments.port, arguments.rate, arguments.round_budget)
    elif arguments.multiproc > 0:
        multiproc_demo(arguments.multiproc)
    else:
        main(arguments.backend)
