"""The bank scenario from the paper's introduction, answered two ways.

A federated engine must find out whether the bank has a loan officer in an
Illinois office and is approved for 30-year mortgages in Illinois, using four
form-style interfaces.  The exhaustive strategy performs every well-formed
access; the relevance-guided strategy only performs accesses that are
long-term relevant for the query and stops as soon as the answer is certain.

Run with:  python examples/bank_mediator.py
"""

from __future__ import annotations

from repro.planner import (
    exhaustive_strategy,
    is_feasible,
    maximally_contained_answers,
    relevance_guided_strategy,
)
from repro.sources import build_bank_scenario


def main() -> None:
    scenario = build_bank_scenario(employees=10, offices=4, states=4, known_employees=2)
    print("Query:", scenario.query)
    print("Known employee ids:", scenario.known_employee_ids)
    print(
        "Static (ab-initio) executable plan exists:",
        is_feasible(scenario.query, scenario.schema),
    )
    complete = maximally_contained_answers(
        scenario.query, scenario.hidden_instance, scenario.initial_configuration()
    )
    print("Complete obtainable answer (inverse-rules plan):", bool(complete))
    print()

    exhaustive = exhaustive_strategy(scenario.mediator(), scenario.query)
    print("Exhaustive strategy (Li [18]):")
    print("  answer:          ", exhaustive.boolean_answer)
    print("  accesses made:   ", exhaustive.accesses_made)
    print("  facts retrieved: ", exhaustive.facts_retrieved)
    print()

    guided = relevance_guided_strategy(scenario.mediator(), scenario.query)
    print("Relevance-guided strategy (this paper):")
    print("  answer:          ", guided.boolean_answer)
    print("  accesses made:   ", guided.accesses_made)
    print("  facts retrieved: ", guided.facts_retrieved)
    print("  relevance checks:", guided.relevance_checks)
    print()
    saved = exhaustive.accesses_made - guided.accesses_made
    print(f"The relevance-guided engine saved {saved} accesses "
          f"({exhaustive.accesses_made} -> {guided.accesses_made}).")


if __name__ == "__main__":
    main()
