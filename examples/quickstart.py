"""Quickstart: model sources with limited access patterns and ask whether an
access is worth making.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Access,
    Configuration,
    SchemaBuilder,
    decide_containment,
    is_immediately_relevant,
    is_long_term_relevant,
    parse_cq,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Declare a schema with access methods (Web-form style interfaces).
    # ------------------------------------------------------------------ #
    builder = SchemaBuilder()
    builder.domain("PersonId")
    builder.domain("City")
    builder.relation("LivesIn", [("person", "PersonId"), ("city", "City")])
    builder.relation("Knows", [("person", "PersonId"), ("friend", "PersonId")])
    # LivesIn can only be queried by person; Knows can only be queried by person.
    builder.access("LivesInByPerson", "LivesIn", inputs=["person"], dependent=True)
    builder.access("KnowsByPerson", "Knows", inputs=["person"], dependent=True)
    schema = builder.build()

    # ------------------------------------------------------------------ #
    # 2. The query: does anyone we can reach live in Paris?
    # ------------------------------------------------------------------ #
    query = parse_cq(schema, "LivesIn(p, 'Paris')", name="LivesInParis")

    # ------------------------------------------------------------------ #
    # 3. The configuration: what we already know (one person identifier).
    # ------------------------------------------------------------------ #
    configuration = Configuration.empty(schema)
    person_domain = schema.relation("LivesIn").domain_of(0)
    configuration.add_constant("alice", person_domain)
    for value, domain in query.constants_with_domains():
        configuration.add_constant(value, domain)

    # ------------------------------------------------------------------ #
    # 4. Ask the relevance questions of the paper.
    # ------------------------------------------------------------------ #
    lives_in_alice = Access(schema.access_method("LivesInByPerson"), ("alice",))
    knows_alice = Access(schema.access_method("KnowsByPerson"), ("alice",))

    print("Query:", query)
    print()
    print("Access LivesIn(alice, ?):")
    print("  immediately relevant:", is_immediately_relevant(query, lives_in_alice, configuration))
    print("  long-term relevant:  ", is_long_term_relevant(query, lives_in_alice, configuration, schema))
    print()
    print("Access Knows(alice, ?):  (not in the query, but it feeds LivesIn lookups)")
    print("  immediately relevant:", is_immediately_relevant(query, knows_alice, configuration))
    print("  long-term relevant:  ", is_long_term_relevant(query, knows_alice, configuration, schema))

    # ------------------------------------------------------------------ #
    # 5. Containment under access limitations (Example 3.2 of the paper).
    # ------------------------------------------------------------------ #
    lives_somewhere = parse_cq(schema, "LivesIn(p, c)", name="LivesSomewhere")
    knows_someone = parse_cq(schema, "Knows(p, q)", name="KnowsSomeone")
    print()
    print(
        "LivesIn(p, c) contained in Knows(p, q) under access limitations "
        "(empty configuration):",
        decide_containment(lives_somewhere, knows_someone, schema),
    )


if __name__ == "__main__":
    main()
